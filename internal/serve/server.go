package serve

import (
	"context"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"transn/internal/ann"
	"transn/internal/obs"
)

// Snapshot format names accepted by Config.SnapshotFormat and the
// transnserve -snapshot-format flag.
const (
	// FormatGob is the training-side gob model written by `transn train
	// -model` (requires the graph to re-derive the final table at load).
	FormatGob = "gob"
	// FormatSnap is the packed transn.snap/v1 file written by `transn
	// snapshot pack` (mmap-friendly; reload is O(header)).
	FormatSnap = "snap"
)

// Config configures a Server. GraphPath and ModelPath are required;
// every other field has a production default.
type Config struct {
	// GraphPath is the network TSV the model was trained on.
	GraphPath string
	// ModelPath is the trained model: a gob written by `transn train
	// -model` (SnapshotFormat "gob") or a transn.snap/v1 file written by
	// `transn snapshot pack` (SnapshotFormat "snap").
	ModelPath string
	// SnapshotFormat selects how ModelPath is decoded: FormatGob
	// (default) or FormatSnap.
	SnapshotFormat string

	// CacheSize bounds the per-snapshot LRU of computed vectors
	// (translations, inferred embeddings). 0 means the default (4096);
	// negative disables caching.
	CacheSize int
	// TranslateWorkers bounds how many translator/inference
	// computations run concurrently (excess requests queue; identical
	// in-flight requests coalesce). 0 means the default (4).
	TranslateWorkers int
	// RequestTimeout is the per-request deadline for the /v1 endpoints.
	// 0 means the default (10s).
	RequestTimeout time.Duration
	// SelfcheckTimeout is the deadline for /admin/selfcheck, which runs
	// full model diagnostics. 0 means the default (1m).
	SelfcheckTimeout time.Duration
	// DrainTimeout bounds how long Shutdown waits for in-flight
	// requests to finish. 0 means the default (10s).
	DrainTimeout time.Duration
	// MaxK caps the k parameter of /v1/knn. 0 means the default (100).
	MaxK int

	// ANNM, ANNEfConstruction and ANNEfSearch tune the HNSW index built
	// (or decoded) at snapshot load; zero values take the ann package
	// defaults (M=16, efConstruction=200, efSearch=64). ANNSeed seeds
	// the deterministic level draws (0 is a valid seed). When the index
	// is decoded from a .snap ANN section, the file's build parameters
	// win — these apply only to fresh builds.
	ANNM              int
	ANNEfConstruction int
	ANNEfSearch       int
	ANNSeed           int64

	// TraceDisabled turns off request-scoped tracing entirely: no
	// request IDs are minted, /debug/requests and /debug/slow answer
	// 404, and the per-request instrumentation reduces to nil checks
	// with zero allocations (pinned by a benchmark). Client-supplied
	// X-Transn-Request-Id headers are still echoed in error envelopes.
	TraceDisabled bool
	// TraceSampleHead / TraceSampleRate / TraceRingSize /
	// TraceSlowRingSize / TraceSlowThreshold configure the trace
	// sampler and rings; zero values take the obs.TraceConfig defaults
	// (head 64, rate 1/64, ring 256, slow ring 64, threshold 250ms) and
	// negative values disable that dimension.
	TraceSampleHead    int
	TraceSampleRate    int
	TraceRingSize      int
	TraceSlowRingSize  int
	TraceSlowThreshold time.Duration
	// Logger, when non-nil, receives the structured JSON access log
	// (one LogLevelAccess line per API request) and the slow-request
	// log (LogLevelSlow, with per-stage timings). Nil disables request
	// logging.
	Logger *slog.Logger
	// RuntimePollInterval is how often runtime health gauges (heap, GC
	// pause, goroutines, scheduler latency) are sampled into the
	// registry. 0 means the default (5s); negative disables polling.
	RuntimePollInterval time.Duration

	// HistoryDisabled turns off the metrics flight recorder: no sampler
	// runs, /debug/history answers 404, and watchdog rules are rejected
	// (they need windows to judge).
	HistoryDisabled bool
	// HistoryFineInterval / HistoryFineRing and HistoryCoarseInterval /
	// HistoryCoarseRing size the recorder's two rings; zero values take
	// the obs.HistoryConfig defaults (1s×300 and 10s×360).
	HistoryFineInterval   time.Duration
	HistoryFineRing       int
	HistoryCoarseInterval time.Duration
	HistoryCoarseRing     int

	// WatchRules, when non-nil, starts the SLO burn-rate watchdog over
	// the recorder's windows (parse files with obs.ParseWatchRules). A
	// tripped rule WARNs, surfaces in /readyz's degraded detail, and —
	// when AnomalyDir is set — captures an anomaly bundle.
	WatchRules *obs.WatchConfig
	// WatchInterval is the watchdog evaluation period. 0 means 1s.
	WatchInterval time.Duration

	// AnomalyDir, when non-empty, is where tripped rules capture
	// bounded-retention anomaly bundles (heap + goroutine profiles,
	// history dump, slow-ring dump). Empty disables capture.
	AnomalyDir string
	// AnomalyKeep / AnomalyCooldown bound bundle retention and capture
	// spacing; zero values take the obs.AnomalyConfig defaults (keep 8,
	// 30s cooldown).
	AnomalyKeep     int
	AnomalyCooldown time.Duration
}

// withDefaults fills zero fields with production defaults.
func (c Config) withDefaults() Config {
	if c.SnapshotFormat == "" {
		c.SnapshotFormat = FormatGob
	}
	if c.CacheSize == 0 {
		c.CacheSize = 4096
	}
	if c.TranslateWorkers == 0 {
		c.TranslateWorkers = 4
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 10 * time.Second
	}
	if c.SelfcheckTimeout == 0 {
		c.SelfcheckTimeout = time.Minute
	}
	if c.DrainTimeout == 0 {
		c.DrainTimeout = 10 * time.Second
	}
	if c.MaxK == 0 {
		c.MaxK = 100
	}
	if c.RuntimePollInterval == 0 {
		c.RuntimePollInterval = 5 * time.Second
	}
	return c
}

// Server is the embedding-serving HTTP service. It owns an atomically
// swappable snapshot (see snapshot), a request coalescer, and the
// telemetry run its metrics report through. Construct with New, mount
// Handler (or call Start), hot-reload with Reload, stop with Shutdown.
// All methods are safe for concurrent use.
type Server struct {
	cfg Config
	run *obs.Run

	snap     atomic.Pointer[snapshot]
	coal     *coalescer
	draining atomic.Bool
	reloadMu sync.Mutex // serializes Reload; requests never block on it

	mux     *http.ServeMux
	httpSrv *http.Server

	traces      *obs.TraceLog // nil when Config.TraceDisabled
	log         *slog.Logger  // nil when Config.Logger is nil
	ids         *reqIDGen
	stopRuntime func()

	history      *obs.History         // nil when Config.HistoryDisabled
	watchdog     *obs.Watchdog        // nil when no Config.WatchRules
	anomalies    *obs.AnomalyCapturer // nil when no Config.AnomalyDir
	stopHistory  func()
	stopWatchdog func()

	reqs, errs, hits, misses, reloads *obs.Counter
	annSearches, annDistEvals         *obs.Counter
	knnFallback, snapLoads            *obs.Counter
	latency                           *obs.Histogram
	genGauge                          *obs.Gauge
	snapMapped                        *obs.Gauge
}

// annConfig assembles the HNSW build parameters from the server config;
// zero fields fall through to the ann package defaults.
func (sv *Server) annConfig() ann.Config {
	return ann.Config{
		M:              sv.cfg.ANNM,
		EfConstruction: sv.cfg.ANNEfConstruction,
		EfSearch:       sv.cfg.ANNEfSearch,
		Seed:           sv.cfg.ANNSeed,
	}
}

// New loads the initial snapshot from cfg's paths and returns a ready
// server. The returned server is not yet listening — call Start, or
// mount Handler on a listener of your own.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.GraphPath == "" || cfg.ModelPath == "" {
		return nil, fmt.Errorf("serve: GraphPath and ModelPath are required")
	}
	if cfg.SnapshotFormat != FormatGob && cfg.SnapshotFormat != FormatSnap {
		return nil, fmt.Errorf("serve: unknown snapshot format %q (want %q or %q)",
			cfg.SnapshotFormat, FormatGob, FormatSnap)
	}
	run := obs.NewRun()
	sv := &Server{
		cfg:          cfg,
		run:          run,
		reqs:         run.Reg.Counter(obs.MetricServeRequests),
		errs:         run.Reg.Counter(obs.MetricServeErrors),
		hits:         run.Reg.Counter(obs.MetricServeCacheHits),
		misses:       run.Reg.Counter(obs.MetricServeCacheMisses),
		reloads:      run.Reg.Counter(obs.MetricServeReloads),
		annSearches:  run.Reg.Counter(obs.MetricANNSearches),
		annDistEvals: run.Reg.Counter(obs.MetricANNDistEvals),
		knnFallback:  run.Reg.Counter(obs.MetricServeKNNExactFallback),
		snapLoads:    run.Reg.Counter(obs.MetricSnapLoads),
		snapMapped:   run.Reg.Gauge(obs.MetricSnapMappedBytes),
		latency: run.Reg.Histogram(obs.MetricServeLatency,
			[]float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5}),
		genGauge: run.Reg.Gauge(obs.MetricServeSnapshotGen),
		log:      cfg.Logger,
		ids:      newReqIDGen(),
	}
	if !cfg.TraceDisabled {
		sv.traces = obs.NewTraceLog(obs.TraceConfig{
			SampleHead:    cfg.TraceSampleHead,
			SampleRate:    cfg.TraceSampleRate,
			RingSize:      cfg.TraceRingSize,
			SlowRingSize:  cfg.TraceSlowRingSize,
			SlowThreshold: cfg.TraceSlowThreshold,
		})
	}
	if cfg.RuntimePollInterval > 0 {
		sv.stopRuntime = run.PollRuntime(cfg.RuntimePollInterval)
	} else {
		sv.stopRuntime = func() {}
	}
	sv.coal = newCoalescer(cfg.TranslateWorkers,
		run.Reg.Gauge(obs.MetricServeQueueDepth), run.Reg.Counter(obs.MetricServeCoalesced))
	snap, err := sv.loadSnapshot(1)
	if err != nil {
		return nil, err
	}
	sv.snap.Store(snap)
	sv.genGauge.Set(1)
	sv.stopHistory = func() {}
	sv.stopWatchdog = func() {}
	if !cfg.HistoryDisabled {
		// Register the watchdog's own metrics before the history resolves
		// the registry's metric set: the flight recorder tracks only
		// metrics that exist at its construction, and everything above
		// (serve counters, coalescer, runtime gauges) is registered by
		// now — the history is deliberately the last telemetry component
		// built.
		trips := run.Reg.Counter(obs.MetricWatchTrips)
		degraded := run.Reg.Gauge(obs.MetricWatchDegraded)
		sv.history = obs.NewHistory(run.Reg, obs.HistoryConfig{
			FineInterval:   cfg.HistoryFineInterval,
			FineCapacity:   cfg.HistoryFineRing,
			CoarseInterval: cfg.HistoryCoarseInterval,
			CoarseCapacity: cfg.HistoryCoarseRing,
		})
		sv.stopHistory = sv.history.Start()
		if cfg.WatchRules != nil {
			if cfg.AnomalyDir != "" {
				ac, err := obs.NewAnomalyCapturer(obs.AnomalyConfig{
					Dir: cfg.AnomalyDir, Keep: cfg.AnomalyKeep, Cooldown: cfg.AnomalyCooldown,
				})
				if err != nil {
					return nil, fmt.Errorf("serve: %w", err)
				}
				sv.anomalies = ac
			}
			wd, err := obs.NewWatchdog(obs.WatchdogConfig{
				History:      sv.history,
				Rules:        cfg.WatchRules,
				Interval:     cfg.WatchInterval,
				Logger:       cfg.Logger,
				Trips:        trips,
				DegradedRule: degraded,
				OnTrip:       sv.captureAnomaly,
			})
			if err != nil {
				return nil, fmt.Errorf("serve: %w", err)
			}
			sv.watchdog = wd
			sv.stopWatchdog = wd.Start()
		}
	} else if cfg.WatchRules != nil {
		return nil, fmt.Errorf("serve: watchdog rules need the metrics history recorder enabled")
	}
	sv.mux = http.NewServeMux()
	sv.routes()
	return sv, nil
}

// Handler returns the server's full route set (API, admin, health and
// telemetry debug endpoints) for mounting on any listener.
func (sv *Server) Handler() http.Handler { return sv.mux }

// Telemetry returns the server's obs run, whose live report is also
// exported at /metrics.
func (sv *Server) Telemetry() *obs.Run { return sv.run }

// Generation returns the generation number of the snapshot currently
// serving traffic.
func (sv *Server) Generation() uint64 { return sv.snap.Load().gen }

// Start listens on addr (":0" picks a free port) and serves in a
// background goroutine until Shutdown. It returns the bound address.
func (sv *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("serve: listen: %w", err)
	}
	sv.httpSrv = &http.Server{Handler: sv.mux, ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = sv.httpSrv.Serve(ln) }()
	return ln.Addr().String(), nil
}

// Reload builds a fresh snapshot from the configured paths and swaps it
// in atomically. In-flight requests keep the snapshot they started
// with; new requests see the new generation — no request is dropped or
// blocked by a reload. On error the previous snapshot stays live and
// serving continues. Concurrent Reloads are serialized.
func (sv *Server) Reload() error {
	sv.reloadMu.Lock()
	defer sv.reloadMu.Unlock()
	sp := sv.run.Trace.Start(obs.SpanServeReload)
	gen := sv.snap.Load().gen + 1
	snap, err := sv.loadSnapshot(gen)
	sp.End()
	if err != nil {
		return err
	}
	sv.snap.Store(snap)
	sv.genGauge.Set(float64(gen))
	sv.reloads.Add(1)
	return nil
}

// Shutdown drains the server gracefully: readiness flips to 503 (so
// load balancers stop routing here), in-flight requests get up to
// DrainTimeout to finish, then the listener closes. The runtime health
// poller stops. Safe to call when Start was never called (it only
// flips readiness) and safe to call more than once.
func (sv *Server) Shutdown() error {
	sv.draining.Store(true)
	sv.stopWatchdog()
	sv.stopHistory()
	sv.stopRuntime()
	if sv.httpSrv == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), sv.cfg.DrainTimeout)
	defer cancel()
	return sv.httpSrv.Shutdown(ctx)
}
