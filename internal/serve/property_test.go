package serve

import (
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// refLRU is an oracle implementation of a fixed-capacity LRU: a plain
// recency-ordered slice, quadratic and obviously correct. The real lru
// must agree with it on every get after any op sequence.
type refLRU struct {
	max  int
	keys []string // index 0 = most recent
	vals map[string][]float64
}

func newRefLRU(max int) *refLRU { return &refLRU{max: max, vals: map[string][]float64{}} }

func (r *refLRU) touch(key string) {
	for i, k := range r.keys {
		if k == key {
			r.keys = append(r.keys[:i], r.keys[i+1:]...)
			break
		}
	}
	r.keys = append([]string{key}, r.keys...)
}

func (r *refLRU) get(key string) ([]float64, bool) {
	if r.max <= 0 {
		return nil, false
	}
	v, ok := r.vals[key]
	if ok {
		r.touch(key)
	}
	return v, ok
}

func (r *refLRU) put(key string, val []float64) {
	if r.max <= 0 {
		return
	}
	if _, ok := r.vals[key]; ok {
		r.vals[key] = val
		r.touch(key)
		return
	}
	r.vals[key] = val
	r.touch(key)
	if len(r.keys) > r.max {
		evict := r.keys[len(r.keys)-1]
		r.keys = r.keys[:len(r.keys)-1]
		delete(r.vals, evict)
	}
}

// TestLRUPropertyAgainstOracle drives the cache and the oracle through
// the same long random op sequence and asserts after every op that the
// cache never exceeds capacity and that every get agrees with the
// oracle — put-then-get coherence, recency promotion and eviction order
// all fall out of that agreement.
func TestLRUPropertyAgainstOracle(t *testing.T) {
	for _, capacity := range []int{1, 2, 3, 7, 16} {
		capacity := capacity
		t.Run(fmt.Sprintf("cap%d", capacity), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(42 + capacity)))
			c := newLRU(capacity)
			ref := newRefLRU(capacity)
			keys := make([]string, capacity*3)
			for i := range keys {
				keys[i] = fmt.Sprintf("k%d", i)
			}
			for op := 0; op < 4000; op++ {
				key := keys[rng.Intn(len(keys))]
				if rng.Intn(2) == 0 {
					val := []float64{float64(op)}
					c.put(key, val)
					ref.put(key, val)
				} else {
					got, gotOK := c.get(key)
					want, wantOK := ref.get(key)
					if gotOK != wantOK {
						t.Fatalf("op %d: get(%q) present=%v, oracle says %v", op, key, gotOK, wantOK)
					}
					if gotOK && got[0] != want[0] {
						t.Fatalf("op %d: get(%q) = %v, oracle says %v", op, key, got, want)
					}
				}
				if n := c.len(); n > capacity {
					t.Fatalf("op %d: len = %d exceeds capacity %d", op, n, capacity)
				}
			}
		})
	}
}

// TestLRUPerSnapshotIsolation pins the reload cache contract: each
// snapshot owns its cache, so a hot reload starts cold and the old
// snapshot's entries never leak into (or poison) the new generation.
func TestLRUPerSnapshotIsolation(t *testing.T) {
	sv, _ := newTestServer(t, Config{})
	const target = "/v1/translate?node=A1&from=authorship&to=affiliation"
	do := func() {
		rec := httptest.NewRecorder()
		sv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, target, nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("%s: %d %s", target, rec.Code, rec.Body)
		}
	}
	do()
	oldSnap := sv.snap.Load()
	if oldSnap.cache.len() != 1 {
		t.Fatalf("pre-reload cache len = %d, want 1", oldSnap.cache.len())
	}
	if err := sv.Reload(); err != nil {
		t.Fatal(err)
	}
	newSnap := sv.snap.Load()
	if newSnap == oldSnap || newSnap.cache == oldSnap.cache {
		t.Fatal("reload did not produce a fresh snapshot with its own cache")
	}
	if n := newSnap.cache.len(); n != 0 {
		t.Fatalf("fresh snapshot cache len = %d, want 0 (must start cold)", n)
	}
	// The old snapshot's cache is untouched (in-flight requests keep
	// using it), and serving against the new generation re-populates
	// the new cache only.
	do()
	if oldSnap.cache.len() != 1 || newSnap.cache.len() != 1 {
		t.Fatalf("cache lens after reload+request = old %d new %d, want 1 and 1",
			oldSnap.cache.len(), newSnap.cache.len())
	}
}

// TestCoalescerSingleFlightProperty asserts the core coalescer
// invariant over many rounds and keys: per key, at most one upstream
// execution is ever in flight, every waiter of that flight observes the
// leader's exact slice (same backing array, not a copy), and a later
// round re-executes rather than serving a stale result.
func TestCoalescerSingleFlightProperty(t *testing.T) {
	c := newCoalescer(4, nil, nil)
	const rounds, numKeys, waiters = 5, 3, 8
	for round := 0; round < rounds; round++ {
		var execs [numKeys]atomic.Int64  // executions this round
		var active [numKeys]atomic.Int64 // concurrently running fns
		var wg sync.WaitGroup
		results := make([][][]float64, numKeys)
		for k := range results {
			results[k] = make([][]float64, waiters)
		}
		for k := 0; k < numKeys; k++ {
			for w := 0; w < waiters; w++ {
				wg.Add(1)
				go func(k, w int) {
					defer wg.Done()
					key := fmt.Sprintf("key-%d", k)
					v, err := c.do(nil, key, func() ([]float64, error) {
						if n := active[k].Add(1); n != 1 {
							t.Errorf("round %d key %d: %d concurrent executions in one flight", round, k, n)
						}
						execs[k].Add(1)
						val := []float64{float64(round), float64(k)}
						active[k].Add(-1)
						return val, nil
					})
					if err != nil {
						t.Error(err)
					}
					results[k][w] = v
				}(k, w)
			}
		}
		wg.Wait()
		for k := 0; k < numKeys; k++ {
			// Without a gate on the leader some waiters may arrive after
			// the flight completes and start a new one — that is correct
			// behaviour — but executions can never exceed the waiters and
			// never be zero.
			if n := execs[k].Load(); n < 1 || n > waiters {
				t.Fatalf("round %d key %d: %d executions for %d waiters", round, k, n, waiters)
			}
			for w, v := range results[k] {
				if len(v) != 2 || v[0] != float64(round) || v[1] != float64(k) {
					t.Fatalf("round %d key %d waiter %d: got %v", round, k, w, v)
				}
			}
		}
	}
}

// TestCoalescerWaitersShareLeaderSlice gates the leader so every waiter
// provably joins one flight, then asserts all of them received the
// leader's identical bytes — the same backing array, byte for byte.
func TestCoalescerWaitersShareLeaderSlice(t *testing.T) {
	c := newCoalescer(2, nil, nil)
	var execs atomic.Int64
	release := make(chan struct{})
	const waiters = 16
	results := make([][]float64, waiters)
	var wg sync.WaitGroup
	for w := 0; w < waiters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			v, err := c.do(nil, "shared", func() ([]float64, error) {
				execs.Add(1)
				<-release
				return []float64{3.25, -1.5, 0.125}, nil
			})
			if err != nil {
				t.Error(err)
			}
			results[w] = v
		}(w)
	}
	for execs.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(5 * time.Millisecond) // let the waiters pile onto the flight
	close(release)
	wg.Wait()
	if n := execs.Load(); n != 1 {
		t.Fatalf("%d executions, want 1", n)
	}
	lead := results[0]
	for w, v := range results {
		if &v[0] != &lead[0] {
			t.Fatalf("waiter %d got a copy, not the leader's slice", w)
		}
		for i := range v {
			if v[i] != lead[i] {
				t.Fatalf("waiter %d observed different bytes: %v vs %v", w, v, lead)
			}
		}
	}
}

// TestCoalescerErrorFansOut asserts a leader's error reaches every
// waiter of the flight and is not cached: the next call re-executes.
func TestCoalescerErrorFansOut(t *testing.T) {
	c := newCoalescer(2, nil, nil)
	var execs atomic.Int64
	release := make(chan struct{})
	wantErr := fmt.Errorf("upstream exploded")
	const waiters = 6
	var wg sync.WaitGroup
	errs := make([]error, waiters)
	for w := 0; w < waiters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			_, err := c.do(nil, "err-key", func() ([]float64, error) {
				execs.Add(1)
				<-release
				return nil, wantErr
			})
			errs[w] = err
		}(w)
	}
	for execs.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(5 * time.Millisecond)
	close(release)
	wg.Wait()
	if n := execs.Load(); n != 1 {
		t.Fatalf("%d executions, want 1", n)
	}
	for w, err := range errs {
		if err != wantErr {
			t.Fatalf("waiter %d error = %v, want %v", w, err, wantErr)
		}
	}
	// Errors must not stick: a fresh call for the same key runs again
	// and succeeds.
	v, err := c.do(nil, "err-key", func() ([]float64, error) { return []float64{1}, nil })
	if err != nil || len(v) != 1 || v[0] != 1 {
		t.Fatalf("post-error call = %v, %v; want [1], nil", v, err)
	}
}
