// Package par provides the worker-pool primitive shared by the sharded
// training pipeline: walk-corpus generation (internal/walk), skip-gram
// shard training (internal/skipgram) and cross-view pair steps
// (internal/transn) all fan work out through Run. Keeping the one
// primitive here means there is a single place where goroutines are
// spawned during training, which is what makes the concurrency story
// auditable (see DESIGN.md §6).
package par

import (
	"sync"
	"sync/atomic"
)

// Run invokes fn(shard) for every shard in [0, shards) and returns once
// all invocations have completed. At most workers invocations run
// concurrently. With workers <= 1 (or a single shard) the calls happen
// inline on the caller's goroutine in ascending shard order, so a
// one-worker pool is byte-for-byte the serial path — the determinism
// tests rely on this.
//
// Shards are claimed dynamically (an atomic counter, not a static
// pre-partition), so uneven shard costs still load-balance. fn must not
// panic across shards it does not own; Run does not recover.
func Run(workers, shards int, fn func(shard int)) {
	if shards <= 0 {
		return
	}
	if workers > shards {
		workers = shards
	}
	if workers <= 1 || shards == 1 {
		for s := 0; s < shards; s++ {
			fn(s)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				s := int(next.Add(1)) - 1
				if s >= shards {
					return
				}
				fn(s)
			}
		}()
	}
	wg.Wait()
}
