// Package par provides the worker-pool primitive shared by the sharded
// training pipeline: walk-corpus generation (internal/walk), skip-gram
// shard training (internal/skipgram) and cross-view pair steps
// (internal/transn) all fan work out through Run. Keeping the one
// primitive here means there is a single place where goroutines are
// spawned during training, which is what makes the concurrency story
// auditable (see DESIGN.md §6).
package par

import (
	"sync"
	"sync/atomic"
	"time"
)

// Run invokes fn(shard) for every shard in [0, shards) and returns once
// all invocations have completed. At most workers invocations run
// concurrently. With workers <= 1 (or a single shard) the calls happen
// inline on the caller's goroutine in ascending shard order, so a
// one-worker pool is byte-for-byte the serial path — the determinism
// tests rely on this.
//
// Shards are claimed dynamically (an atomic counter, not a static
// pre-partition), so uneven shard costs still load-balance. fn must not
// panic across shards it does not own; Run does not recover.
func Run(workers, shards int, fn func(shard int)) {
	if shards <= 0 {
		return
	}
	if workers > shards {
		workers = shards
	}
	if workers <= 1 || shards == 1 {
		for s := 0; s < shards; s++ {
			fn(s)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				s := int(next.Add(1)) - 1
				if s >= shards {
					return
				}
				fn(s)
			}
		}()
	}
	wg.Wait()
}

// WorkerStat is one worker's share of a RunTimed fan-out: cumulative
// time spent inside shard bodies and the number of shards it claimed.
// Idle time for the fan-out is the caller's wall minus Busy.
type WorkerStat struct {
	Worker int
	Busy   time.Duration
	Shards int
}

// Stats describes one RunTimed fan-out: its wall-clock duration and
// the per-worker breakdown (only workers that claimed at least one
// shard appear; on the serial path there is exactly one entry).
type Stats struct {
	Wall    time.Duration
	Workers []WorkerStat
}

// RunTimed is Run with per-worker busy-time attribution, feeding the
// telemetry layer's busy/idle accounting (internal/obs). The
// scheduling contract is identical to Run — dynamic shard claiming,
// inline ascending execution when workers <= 1 — and the only added
// cost is two monotonic clock reads per shard, negligible next to any
// real shard body. Callers that don't need Stats should keep using Run.
func RunTimed(workers, shards int, fn func(shard int)) Stats {
	return RunTimedWorker(workers, shards, func(_, s int) { fn(s) })
}

// RunTimedWorker is RunTimed for callers that also want the claiming
// worker's index inside the shard body (e.g. to attribute a span to a
// worker). Worker indices are in [0, workers); on the inline serial
// path every shard reports worker 0.
func RunTimedWorker(workers, shards int, fn func(worker, shard int)) Stats {
	if shards <= 0 {
		return Stats{}
	}
	if workers > shards {
		workers = shards
	}
	start := time.Now()
	if workers <= 1 || shards == 1 {
		for s := 0; s < shards; s++ {
			fn(0, s)
		}
		wall := time.Since(start)
		return Stats{Wall: wall, Workers: []WorkerStat{{Worker: 0, Busy: wall, Shards: shards}}}
	}
	stats := make([]WorkerStat, workers)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			st := &stats[w]
			st.Worker = w
			for {
				s := int(next.Add(1)) - 1
				if s >= shards {
					return
				}
				t0 := time.Now()
				fn(w, s)
				st.Busy += time.Since(t0)
				st.Shards++
			}
		}(w)
	}
	wg.Wait()
	out := Stats{Wall: time.Since(start)}
	for _, st := range stats {
		if st.Shards > 0 {
			out.Workers = append(out.Workers, st)
		}
	}
	return out
}
