package par

import (
	"sync/atomic"
	"testing"
)

func TestRunCoversEveryShardOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 3, 8, 100} {
		for _, shards := range []int{0, 1, 2, 7, 64} {
			hits := make([]int32, shards)
			Run(workers, shards, func(s int) {
				atomic.AddInt32(&hits[s], 1)
			})
			for s, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d shards=%d: shard %d ran %d times", workers, shards, s, h)
				}
			}
		}
	}
}

func TestRunSingleWorkerIsInlineAndOrdered(t *testing.T) {
	var order []int
	Run(1, 5, func(s int) { order = append(order, s) }) // no sync: must be inline
	for i, s := range order {
		if s != i {
			t.Fatalf("serial order %v", order)
		}
	}
	if len(order) != 5 {
		t.Fatalf("ran %d shards", len(order))
	}
}

func TestRunBoundsConcurrency(t *testing.T) {
	const workers = 3
	var cur, peak atomic.Int32
	Run(workers, 64, func(s int) {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		// Busy work so goroutines overlap when GOMAXPROCS allows it.
		x := 0
		for i := 0; i < 1000; i++ {
			x += i ^ s
		}
		_ = x
		cur.Add(-1)
	})
	if p := peak.Load(); p > workers {
		t.Fatalf("observed %d concurrent shards, cap %d", p, workers)
	}
}

func TestRunZeroShardsNoCall(t *testing.T) {
	called := false
	Run(4, 0, func(int) { called = true })
	if called {
		t.Fatal("fn called with zero shards")
	}
}

func TestRunTimedCoversEveryShardOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 3, 8, 100} {
		for _, shards := range []int{0, 1, 2, 7, 64} {
			hits := make([]int32, shards)
			st := RunTimed(workers, shards, func(s int) {
				atomic.AddInt32(&hits[s], 1)
			})
			for s, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d shards=%d: shard %d ran %d times", workers, shards, s, h)
				}
			}
			total := 0
			for _, w := range st.Workers {
				if w.Shards <= 0 {
					t.Fatalf("workers=%d shards=%d: zero-shard worker reported: %+v", workers, shards, w)
				}
				total += w.Shards
			}
			if total != shards {
				t.Fatalf("workers=%d shards=%d: worker stats cover %d shards", workers, shards, total)
			}
			if shards > 0 && st.Wall <= 0 {
				t.Fatalf("workers=%d shards=%d: non-positive wall %v", workers, shards, st.Wall)
			}
		}
	}
}

func TestRunTimedSerialPathOrderedSingleWorker(t *testing.T) {
	var order []int
	st := RunTimed(1, 5, func(s int) { order = append(order, s) }) // no sync: must be inline
	for i, s := range order {
		if s != i {
			t.Fatalf("serial order %v", order)
		}
	}
	if len(st.Workers) != 1 || st.Workers[0].Worker != 0 || st.Workers[0].Shards != 5 {
		t.Fatalf("serial stats %+v", st.Workers)
	}
	if st.Workers[0].Busy != st.Wall {
		t.Fatalf("serial busy %v != wall %v", st.Workers[0].Busy, st.Wall)
	}
}
