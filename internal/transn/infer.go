package transn

import (
	"fmt"

	"transn/internal/graph"
	"transn/internal/ordered"
)

// NeighborEdge describes one edge of a node that was not part of the
// training graph: the existing node it attaches to, the edge type, and
// the weight.
type NeighborEdge struct {
	Neighbor graph.NodeID
	Type     graph.EdgeType
	Weight   float64
}

// InferNode embeds an unseen node from its edges into the trained graph
// (inductive fold-in, an extension beyond the paper). For each view
// whose edge type appears among the edges, the node's view-specific
// embedding is estimated as the weight-averaged embedding of its
// neighbors in that view; the final embedding averages the view
// estimates, mirroring Embeddings. This matches the skip-gram geometry:
// a node co-occurs on walks with its neighbors, so its embedding
// gravitates to their (weighted) barycenter.
//
//lint:finite-checked inputs are validated positive weights and trained (guarded) embedding rows; the averages cannot introduce non-finite values
func (m *Model) InferNode(edges []NeighborEdge) ([]float64, error) {
	if len(edges) == 0 {
		return nil, fmt.Errorf("transn: cannot infer a node with no edges")
	}
	out := make([]float64, m.Cfg.Dim)
	viewsUsed := 0
	// Group by edge type (= view index).
	byView := map[graph.EdgeType][]NeighborEdge{}
	for _, e := range edges {
		if int(e.Type) < 0 || int(e.Type) >= len(m.views) {
			return nil, fmt.Errorf("transn: unknown edge type %d", e.Type)
		}
		if e.Weight <= 0 {
			return nil, fmt.Errorf("transn: non-positive edge weight %g", e.Weight)
		}
		byView[e.Type] = append(byView[e.Type], e)
	}
	viewVec := make([]float64, m.Cfg.Dim)
	// Sorted view order keeps the float accumulation deterministic.
	for _, et := range ordered.Keys(byView) {
		es := byView[et]
		v := m.views[et]
		if m.emb[et] == nil {
			continue
		}
		for i := range viewVec {
			viewVec[i] = 0
		}
		var total float64
		for _, e := range es {
			l := v.Local(e.Neighbor)
			if l < 0 {
				return nil, fmt.Errorf("transn: neighbor %d not in view %d", e.Neighbor, et)
			}
			row := m.emb[et].In.Row(l)
			for i := range viewVec {
				viewVec[i] += e.Weight * row[i]
			}
			total += e.Weight
		}
		if total == 0 {
			continue
		}
		for i := range viewVec {
			out[i] += viewVec[i] / total
		}
		viewsUsed++
	}
	if viewsUsed == 0 {
		return nil, fmt.Errorf("transn: no usable views for the given edges")
	}
	inv := 1 / float64(viewsUsed)
	for i := range out {
		out[i] *= inv
	}
	return out, nil
}
