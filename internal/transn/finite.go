package transn

import (
	"fmt"
	"math"

	"transn/internal/mat"
	"transn/internal/obs"
)

// This file is the trainer's non-finite guard: a NaN or Inf that sneaks
// into an embedding table or translator (a blown-up learning rate, a
// degenerate graph, a poisoned input) silently corrupts everything the
// run produces afterwards, so Algorithm 1 watches for one at every
// iteration boundary and reports it as a StageDiagnostic warning event
// instead of training on garbage unannounced. The scan is deliberately
// cheap — the iteration's already-computed losses (which inherit
// non-finiteness from the tables that produced them), every translator
// parameter (a few KB), and a fixed-stride sample of embedding rows —
// and runs at shard-merge boundaries only, never inside shard loops.
// The full-table sweep happens once, via CheckFinite, when training
// ends; `transn train` fails with a clear error if it trips.

// probeRows bounds the per-view embedding rows sampled each iteration.
const probeRows = 64

func isFinite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}

// finiteSlice returns the index of the first non-finite element, or -1.
func finiteSlice(xs []float64) int {
	for i, v := range xs {
		if !isFinite(v) {
			return i
		}
	}
	return -1
}

// guardIteration checks the freshly merged iteration stats and a
// deterministic sample of model state for non-finite values. On the
// first detection it marks the model and emits one StageDiagnostic
// warning through the Observer; later iterations stay quiet (the run
// report and CheckFinite carry the final verdict), so a diverged run
// does not flood the event stream.
func (m *Model) guardIteration(st *IterStats) {
	if m.nonFinite {
		return
	}
	bad := m.nonFiniteIn(st)
	if bad == "" {
		return
	}
	m.nonFinite = true
	m.emit(obs.TrainEvent{
		Stage: obs.StageDiagnostic, View: -1, Pair: -1, Epoch: st.Iteration,
		Level:   obs.LevelWarning,
		Message: fmt.Sprintf("non-finite %s at iteration %d; model state is corrupt from here on", bad, st.Iteration),
	}, 0)
}

// nonFiniteIn names the first non-finite value found in the iteration's
// merged losses, the translator parameters, or the embedding-row
// sample; it returns "" when everything probed is finite.
func (m *Model) nonFiniteIn(st *IterStats) string {
	if !isFinite(st.SingleLoss) || !isFinite(st.CrossLoss) ||
		!isFinite(st.Translation) || !isFinite(st.Reconstruction) {
		return "iteration loss"
	}
	for vi, l := range st.ViewLoss {
		if !isFinite(l) {
			return fmt.Sprintf("single-view loss of view %d", vi)
		}
	}
	for pi, l := range st.PairLoss {
		if !isFinite(l) {
			return fmt.Sprintf("cross-view loss of pair %d", pi)
		}
	}
	for pi, pair := range m.trans {
		for side, tr := range pair {
			if tr == nil {
				continue
			}
			if err := tr.CheckFinite(); err != nil {
				return fmt.Sprintf("translator parameter (pair %d side %d)", pi, side)
			}
		}
	}
	for vi, e := range m.emb {
		if e == nil {
			continue
		}
		stride := e.In.R / probeRows
		if stride < 1 {
			stride = 1
		}
		for r := 0; r < e.In.R; r += stride {
			if finiteSlice(e.In.Row(r)) >= 0 {
				return fmt.Sprintf("embedding row (view %d, local node %d)", vi, r)
			}
		}
	}
	return ""
}

// NonFinite reports whether the iteration guard observed a non-finite
// loss, translator parameter or sampled embedding value during
// training. It can lag reality by up to one iteration (the guard runs
// at iteration boundaries) and, for embeddings, samples rather than
// sweeps — CheckFinite is the exhaustive check.
func (m *Model) NonFinite() bool { return m.nonFinite }

// CheckFinite sweeps every view-specific embedding row and every
// translator parameter and returns a descriptive error on the first
// non-finite value, or nil when the whole model is finite. It is a full
// scan — O(nodes × dim) per view — meant for the end of training
// (`transn train` fails on it) and for diagnostics, not for the
// training loop.
func (m *Model) CheckFinite() error {
	for vi, e := range m.emb {
		if e == nil {
			continue
		}
		for r := 0; r < e.In.R; r++ {
			if c := finiteSlice(e.In.Row(r)); c >= 0 {
				return fmt.Errorf("transn: non-finite embedding: view %d, local node %d, dimension %d (%v)",
					vi, r, c, e.In.At(r, c))
			}
		}
	}
	for pi, pair := range m.trans {
		for side, tr := range pair {
			if tr == nil {
				continue
			}
			if err := tr.CheckFinite(); err != nil {
				return fmt.Errorf("transn: pair %d side %d: %w", pi, side, err)
			}
		}
	}
	return nil
}

// CheckFinite returns an error naming the first non-finite translator
// parameter, or nil when all parameters are finite.
func (t *Translator) CheckFinite() error {
	check := func(kind string, ms []*mat.Dense) error {
		for i, m := range ms {
			if idx := finiteSlice(m.Data); idx >= 0 {
				return fmt.Errorf("non-finite translator parameter %s[%d] element %d (%v)",
					kind, i, idx, m.Data[idx])
			}
		}
		return nil
	}
	if err := check("W", t.Ws); err != nil {
		return err
	}
	return check("B", t.Bs)
}
