package transn

import (
	"fmt"

	"transn/internal/graph"
	"transn/internal/mat"
	"transn/internal/skipgram"
)

// Export is the serialization-agnostic view of a trained model's
// learned state: everything a persistence format must carry, with the
// graph-derived structure (views, pairs) left out because loaders
// re-derive it from the graph the caller supplies. Both the gob format
// (persist.go) and the binary snapshot format (internal/snapfmt) decode
// into an Export and assemble the model through FromExport, so the two
// formats cannot drift on validation rules. Matrices in an Export are
// not copies — they alias the model (Export) or the decoded buffers
// (FromExport), and the read-only contract travels with them.
type Export struct {
	// Cfg is the training configuration (hyperparameters only; runtime
	// telemetry handles are not part of a model's learned state).
	Cfg Config
	// EmbIn and EmbOut hold per-view input/output embedding tables in
	// graph view order; nil entries mark empty views.
	EmbIn, EmbOut []*mat.Dense
	// TransW and TransB hold per-pair, per-side translator weight and
	// bias stacks in graph pair order; an empty weight list marks an
	// untrained side.
	TransW, TransB [][2][]*mat.Dense
	// TranslatorSimple records whether the translators are the simple
	// single-layer variant (Config.SimpleTranslator at train time).
	TranslatorSimple bool
}

// Export returns the model's learned state for serialization. The
// matrices alias the model — callers must treat them as read-only.
func (m *Model) Export() Export {
	e := Export{Cfg: m.Cfg}
	for _, em := range m.emb {
		if em == nil {
			e.EmbIn = append(e.EmbIn, nil)
			e.EmbOut = append(e.EmbOut, nil)
			continue
		}
		e.EmbIn = append(e.EmbIn, em.In)
		e.EmbOut = append(e.EmbOut, em.Out)
	}
	for _, pair := range m.trans {
		var w2, b2 [2][]*mat.Dense
		for side := 0; side < 2; side++ {
			if pair[side] == nil {
				continue
			}
			w2[side] = append(w2[side], pair[side].Ws...)
			b2[side] = append(b2[side], pair[side].Bs...)
			e.TranslatorSimple = pair[side].Simple
		}
		e.TransW = append(e.TransW, w2)
		e.TransB = append(e.TransB, b2)
	}
	return e
}

// FromExport assembles a model from serialized learned state and the
// graph it was trained on (same nodes, edges and types). It owns the
// structural validation shared by every persistence format: view
// counts and row counts must match the graph, and translator pairs
// must match the graph's view-pair derivation. The matrices are
// retained, not copied.
func FromExport(e Export, g *graph.Graph) (*Model, error) {
	m := &Model{Cfg: e.Cfg, Graph: g, views: g.Views()}
	if len(e.EmbIn) != len(m.views) {
		return nil, fmt.Errorf("transn: model has %d views, graph has %d",
			len(e.EmbIn), len(m.views))
	}
	if len(e.EmbOut) != len(e.EmbIn) {
		return nil, fmt.Errorf("transn: model has %d in-tables but %d out-tables",
			len(e.EmbIn), len(e.EmbOut))
	}
	for vi, v := range m.views {
		in := e.EmbIn[vi]
		if in == nil {
			m.emb = append(m.emb, nil)
			continue
		}
		if in.R != v.NumNodes() {
			return nil, fmt.Errorf("transn: view %d has %d nodes, stored table has %d rows",
				vi, v.NumNodes(), in.R)
		}
		m.emb = append(m.emb, &skipgram.Model{In: in, Out: e.EmbOut[vi]})
	}
	if len(e.TransW) > 0 {
		m.pairs = g.ViewPairs()
		if len(m.pairs) != len(e.TransW) {
			return nil, fmt.Errorf("transn: model has %d view-pairs, graph has %d",
				len(e.TransW), len(m.pairs))
		}
		if len(e.TransB) != len(e.TransW) {
			return nil, fmt.Errorf("transn: model has %d weight pairs but %d bias pairs",
				len(e.TransW), len(e.TransB))
		}
		for p := range e.TransW {
			var pair [2]*Translator
			for side := 0; side < 2; side++ {
				if len(e.TransW[p][side]) == 0 {
					continue
				}
				pair[side] = &Translator{
					Simple: e.TranslatorSimple,
					Ws:     e.TransW[p][side],
					Bs:     e.TransB[p][side],
				}
			}
			m.trans = append(m.trans, pair)
		}
	}
	return m, nil
}
