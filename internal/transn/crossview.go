package transn

import (
	"math"

	"transn/internal/autodiff"
	"transn/internal/graph"
	"transn/internal/mat"
	"transn/internal/walk"
)

// crossViewStep runs one cross-view pass for view-pair pi (Algorithm 1
// lines 8–12): it samples common-node path segments from both
// paired-subviews and optimizes the translation tasks T1/T2 (Eqs. 11–12)
// and reconstruction tasks R1/R2 (Eqs. 13–14). It returns the mean
// segment loss.
func (m *Model) crossViewStep(pi int) float64 {
	pr := m.pairs[pi]
	var total float64
	var count int
	// Side 0: paths from φ'_i, translator T_{i→j} forward; side 1: the
	// dual direction.
	for side := 0; side < 2; side++ {
		src, dst := pr.I, pr.J
		fwd, bwd := m.trans[pi][0], m.trans[pi][1]
		if side == 1 {
			src, dst = pr.J, pr.I
			fwd, bwd = m.trans[pi][1], m.trans[pi][0]
		}
		segs := m.sampleCommonSegments(pi, side)
		for _, seg := range segs {
			total += m.trainSegment(seg, src, dst, fwd, bwd)
			count++
		}
	}
	if count == 0 {
		return 0
	}
	return total / float64(count)
}

// sampleCommonSegments samples walks from the paired-subview of the given
// side, removes nodes not shared by both subviews (Section III-B1), and
// cuts the remainder into segments of exactly CrossPathLen global IDs.
// It keeps sampling until CrossPathsPerPair segments are collected or a
// sampling budget is exhausted (sparse overlaps may not support the full
// quota).
func (m *Model) sampleCommonSegments(pi, side int) [][]graph.NodeID {
	sub := m.subviews[pi][side]
	other := m.subviews[pi][1-side]
	walker := m.subWalkers[pi][side]
	want := m.Cfg.CrossPathsPerPair
	L := m.Cfg.CrossPathLen
	var segs [][]graph.NodeID
	if sub.NumNodes() == 0 {
		return nil
	}
	budget := want * 8
	for len(segs) < want && budget > 0 {
		budget--
		start := m.rng.Intn(sub.NumNodes())
		p := walker.Walk(sub, start, m.Cfg.WalkLength, m.rng)
		// Keep only nodes present in both subviews.
		var shared []graph.NodeID
		for _, l := range p {
			gid := sub.Global(l)
			if other.Contains(gid) {
				shared = append(shared, gid)
			}
		}
		for len(shared) >= L && len(segs) < want {
			segs = append(segs, shared[:L])
			shared = shared[L:]
		}
	}
	return segs
}

// trainSegment optimizes the dual-learning objective on one segment of
// common nodes: translation src→dst scored against the dst-view
// embeddings of the same nodes, plus reconstruction src→dst→src scored
// against the original src-view embeddings. Gradients update both
// translators (Adam) and the touched embedding rows in both views (SGD
// with γ_cross), matching Θ_cross of Algorithm 1.
func (m *Model) trainSegment(seg []graph.NodeID, src, dst int, fwd, bwd *Translator) float64 {
	srcView, dstView := m.views[src], m.views[dst]
	srcEmb, dstEmb := m.emb[src], m.emb[dst]
	L, d := len(seg), m.Cfg.Dim

	// Gather embedding rows into path matrices (copies; gradients are
	// scattered back after Backward).
	A := mat.New(L, d)    // src-view embeddings of the segment
	Atgt := mat.New(L, d) // dst-view embeddings of the segment
	srcLoc := make([]int, L)
	dstLoc := make([]int, L)
	for k, gid := range seg {
		srcLoc[k] = srcView.Local(gid)
		dstLoc[k] = dstView.Local(gid)
		A.SetRow(k, srcEmb.In.Row(srcLoc[k]))
		Atgt.SetRow(k, dstEmb.In.Row(dstLoc[k]))
	}

	tp := autodiff.NewTape()
	tA := tp.Param(A)
	tB := tp.Param(Atgt)
	// Both sides' embeddings are in Θ_cross (Algorithm 1). The loss
	// compares layer-normalized matrices — the translator output is
	// already layer-normed, and targets pass through the same normalizer
	// — so the objective acts on embedding *directions*; scale is owned
	// by the single-view objective. Because the gradient reaching the
	// target flows back through a trainable translator on the source
	// side, the two views are pulled into *correlated* (mutually
	// predictable) configurations rather than forced equality, which is
	// the paper's stated goal (Section I, challenge 2). This alignment
	// is also what makes the final view-averaged embedding (Section
	// III-C) coherent: averaging mutually unaligned spaces cancels
	// signal.
	tTgt := tp.LayerNormRows(tB)

	var loss *autodiff.Tensor
	translated := fwd.Apply(tp, tA)
	if !m.Cfg.NoTranslation {
		loss = m.similarityLoss(tp, translated, tTgt)
	}
	if !m.Cfg.NoReconstruction {
		recon := bwd.Apply(tp, translated)
		rl := m.similarityLoss(tp, recon, tp.LayerNormRows(tA))
		if loss == nil {
			loss = rl
		} else {
			loss = tp.Add(loss, rl)
		}
	}
	if loss == nil {
		fwd.DiscardGrads()
		bwd.DiscardGrads()
		return 0
	}
	tp.Backward(loss)

	// Scatter embedding gradients (SGD at γ_cross), unless this is the
	// translator warm-up iteration.
	if m.crossEmbedUpdates {
		lr := m.Cfg.LRCross
		for k := range seg {
			row := srcEmb.In.Row(srcLoc[k])
			g := tA.Grad.Row(k)
			for i := range row {
				row[i] -= lr * g[i]
			}
			row = dstEmb.In.Row(dstLoc[k])
			g = tB.Grad.Row(k)
			for i := range row {
				row[i] -= lr * g[i]
			}
		}
	}
	// Translator parameter updates. When reconstruction is disabled the
	// backward translator never ran; discard its (empty) records.
	fwd.Step()
	if m.Cfg.NoReconstruction {
		bwd.DiscardGrads()
	} else {
		bwd.Step()
	}
	return loss.Value.At(0, 0)
}

// similarityLoss scores how close translated is to target under the
// configured objective. Both losses follow the paper's Eq. 11–14
// normalization: the double sum over path positions and dimensions is
// divided by |λ| only (not by |λ|·d), which keeps per-element gradients
// large enough to matter against the single-view updates.
func (m *Model) similarityLoss(tp *autodiff.Tape, translated, target *autodiff.Tensor) *autodiff.Tensor {
	invL := 1 / float64(translated.Value.R)
	switch m.Cfg.Loss {
	case LossInnerProduct:
		// Literal Eqs. 11–14: the paper's footnote treats a low inner
		// product as "similar", so the raw sum is minimized directly.
		return tp.Scale(invL, tp.SumAll(tp.ElemMul(translated, target)))
	default:
		d := tp.Sub(translated, target)
		return tp.Scale(invL, tp.SumAll(tp.ElemMul(d, d)))
	}
}

// walkerFor exposes the view walker type for tests.
func (m *Model) walkerFor(vi int) walk.Walker { return m.walkers[vi] }

// normalizeRows rescales each row of x in place to zero mean and unit
// variance (matching LayerNormRows), returning x.
func normalizeRows(x *mat.Dense) *mat.Dense {
	const eps = 1e-5
	for i := 0; i < x.R; i++ {
		row := x.Row(i)
		var mean float64
		for _, v := range row {
			mean += v
		}
		mean /= float64(len(row))
		var varr float64
		for _, v := range row {
			d := v - mean
			varr += d * d
		}
		varr /= float64(len(row))
		is := 1 / math.Sqrt(varr+eps)
		for j := range row {
			row[j] = (row[j] - mean) * is
		}
	}
	return x
}
