package transn

import (
	"math"
	"math/rand"

	"transn/internal/autodiff"
	"transn/internal/graph"
	"transn/internal/mat"
	"transn/internal/obs"
	"transn/internal/walk"
)

// crossResult is one pair step's diagnostics: mean segment losses
// (total and the translation/reconstruction components) and the number
// of common-node segments trained.
type crossResult struct {
	loss           float64
	translation    float64
	reconstruction float64
	segments       int
}

// crossViewStep runs one cross-view pass for view-pair pi (Algorithm 1
// lines 8–12): it samples common-node path segments from both
// paired-subviews and optimizes the translation tasks T1/T2 (Eqs. 11–12)
// and reconstruction tasks R1/R2 (Eqs. 13–14). It returns the mean
// segment losses. rng is pair pi's private stream; when pair steps fan
// out over the worker pool, each pair runs on exactly one worker
// (worker is that worker's index, for span attribution) so nothing here
// is shared between goroutines except the embedding tables, whose
// accesses go through the Hogwild gather/scatter helpers below, and the
// telemetry sinks, which are race-safe — segment losses accumulate in a
// shard-local histogram view flushed once at the end of the step.
func (m *Model) crossViewStep(pi, iter, worker int, rng *rand.Rand) crossResult {
	span := m.tel.trace().Start(obs.SpanCrossPair).Pair(pi).Epoch(iter).Worker(worker)
	segLoss := m.tel.segLoss.Local()
	pr := m.pairs[pi]
	var res crossResult
	// Side 0: paths from φ'_i, translator T_{i→j} forward; side 1: the
	// dual direction.
	for side := 0; side < 2; side++ {
		src, dst := pr.I, pr.J
		fwd, bwd := m.trans[pi][0], m.trans[pi][1]
		if side == 1 {
			src, dst = pr.J, pr.I
			fwd, bwd = m.trans[pi][1], m.trans[pi][0]
		}
		segs := m.sampleCommonSegments(pi, side, rng)
		for _, seg := range segs {
			total, trans, recon := m.trainSegment(seg, src, dst, fwd, bwd)
			res.loss += total
			res.translation += trans
			res.reconstruction += recon
			segLoss.Observe(total)
			res.segments++
		}
	}
	segLoss.Flush()
	if res.segments > 0 {
		inv := 1 / float64(res.segments)
		res.loss *= inv
		res.translation *= inv
		res.reconstruction *= inv
	}
	m.tel.crossSegs.Add(int64(res.segments))
	m.emit(obs.TrainEvent{
		Stage: obs.StageCrossPair, View: -1, Pair: pi, Epoch: iter,
		LCross: res.loss, LTranslation: res.translation, LReconstruction: res.reconstruction,
		Examples: res.segments,
	}, span.End())
	return res
}

// sampleCommonSegments samples walks from the paired-subview of the given
// side, removes nodes not shared by both subviews (Section III-B1), and
// cuts the remainder into segments of exactly CrossPathLen global IDs.
// It keeps sampling until CrossPathsPerPair segments are collected or a
// sampling budget is exhausted (sparse overlaps may not support the full
// quota).
func (m *Model) sampleCommonSegments(pi, side int, rng *rand.Rand) [][]graph.NodeID {
	sub := m.subviews[pi][side]
	other := m.subviews[pi][1-side]
	walker := m.subWalkers[pi][side]
	want := m.Cfg.CrossPathsPerPair
	L := m.Cfg.CrossPathLen
	var segs [][]graph.NodeID
	if sub.NumNodes() == 0 {
		return nil
	}
	budget := want * 8
	for len(segs) < want && budget > 0 {
		budget--
		start := rng.Intn(sub.NumNodes())
		p := walker.Walk(sub, start, m.Cfg.WalkLength, rng)
		// Keep only nodes present in both subviews.
		var shared []graph.NodeID
		for _, l := range p {
			gid := sub.Global(l)
			if other.Contains(gid) {
				shared = append(shared, gid)
			}
		}
		for len(shared) >= L && len(segs) < want {
			segs = append(segs, shared[:L])
			shared = shared[L:]
		}
	}
	return segs
}

// trainSegment optimizes the dual-learning objective on one segment of
// common nodes: translation src→dst scored against the dst-view
// embeddings of the same nodes, plus reconstruction src→dst→src scored
// against the original src-view embeddings. Gradients update both
// translators (Adam) and the touched embedding rows in both views (SGD
// with γ_cross), matching Θ_cross of Algorithm 1. It returns the
// segment's combined loss and its translation (Eqs. 11–12) and
// reconstruction (Eqs. 13–14) components; a disabled task contributes
// zero.
func (m *Model) trainSegment(seg []graph.NodeID, src, dst int, fwd, bwd *Translator) (total, transLoss, reconLoss float64) {
	srcView, dstView := m.views[src], m.views[dst]
	srcEmb, dstEmb := m.emb[src], m.emb[dst]
	L, d := len(seg), m.Cfg.Dim

	// Gather embedding rows into path matrices (copies; gradients are
	// scattered back after Backward).
	A := mat.New(L, d)    // src-view embeddings of the segment
	Atgt := mat.New(L, d) // dst-view embeddings of the segment
	srcLoc := make([]int, L)
	dstLoc := make([]int, L)
	for k, gid := range seg {
		srcLoc[k] = srcView.Local(gid)
		dstLoc[k] = dstView.Local(gid)
	}
	gatherRows(A, srcEmb.In, srcLoc)
	gatherRows(Atgt, dstEmb.In, dstLoc)

	tp := autodiff.NewTape()
	tA := tp.Param(A)
	tB := tp.Param(Atgt)
	// Both sides' embeddings are in Θ_cross (Algorithm 1). The loss
	// compares layer-normalized matrices — the translator output is
	// already layer-normed, and targets pass through the same normalizer
	// — so the objective acts on embedding *directions*; scale is owned
	// by the single-view objective. Because the gradient reaching the
	// target flows back through a trainable translator on the source
	// side, the two views are pulled into *correlated* (mutually
	// predictable) configurations rather than forced equality, which is
	// the paper's stated goal (Section I, challenge 2). This alignment
	// is also what makes the final view-averaged embedding (Section
	// III-C) coherent: averaging mutually unaligned spaces cancels
	// signal.
	tTgt := tp.LayerNormRows(tB)

	var loss *autodiff.Tensor
	translated := fwd.Apply(tp, tA)
	if !m.Cfg.NoTranslation {
		loss = m.similarityLoss(tp, translated, tTgt)
		transLoss = loss.Value.At(0, 0)
	}
	if !m.Cfg.NoReconstruction {
		recon := bwd.Apply(tp, translated)
		rl := m.similarityLoss(tp, recon, tp.LayerNormRows(tA))
		reconLoss = rl.Value.At(0, 0)
		if loss == nil {
			loss = rl
		} else {
			loss = tp.Add(loss, rl)
		}
	}
	if loss == nil {
		fwd.DiscardGrads()
		bwd.DiscardGrads()
		return 0, 0, 0
	}
	tp.Backward(loss)

	// Scatter embedding gradients (SGD at γ_cross), unless this is the
	// translator warm-up iteration.
	if m.crossEmbedUpdates {
		lr := m.Cfg.LRCross
		scatterRowGrads(srcEmb.In, srcLoc, tA.Grad, lr)
		scatterRowGrads(dstEmb.In, dstLoc, tB.Grad, lr)
	}
	// Translator parameter updates. When reconstruction is disabled the
	// backward translator never ran; discard its (empty) records.
	fwd.Step()
	if m.Cfg.NoReconstruction {
		bwd.DiscardGrads()
	} else {
		bwd.Step()
	}
	return loss.Value.At(0, 0), transLoss, reconLoss
}

// gatherRows copies src rows named by loc into consecutive rows of dst.
//
// gatherRows and scatterRowGrads are the only places where concurrent
// cross-view pair steps touch shared memory: two pairs that share a
// view read and write that view's embedding rows without
// synchronization (Hogwild, like the skip-gram shards — see
// skipgram.TrainPair). The races are intentional and benign on
// platforms with atomic aligned 64-bit loads/stores: a stale read or
// lost update perturbs one stochastic gradient step. go:norace scopes
// the race-detector exemption to exactly these row copies, keeping the
// rest of the pair step (translators, tape, pool) fully instrumented;
// go:noinline keeps the annotation effective when called from
// instrumented code. Deterministic mode never overlaps pair steps, so
// there the helpers are plain copies.
//
//go:norace
//go:noinline
func gatherRows(dst, src *mat.Dense, loc []int) {
	// Element copies are written out by hand: go:norace covers only this
	// body, so delegating to the (instrumented) mat.Dense.SetRow would
	// reintroduce the reports this directive is scoped to suppress.
	for k, l := range loc {
		d := dst.Row(k)
		s := src.Row(l)
		for i := range d {
			d[i] = s[i]
		}
	}
}

// scatterRowGrads applies dst.Row(loc[k]) -= lr * grad.Row(k) for every
// segment position k. See gatherRows for the concurrency contract.
//
//lint:finite-checked guardIteration (finite.go) sweeps translator params, losses and sampled embedding rows every iteration
//go:norace
//go:noinline
func scatterRowGrads(dst *mat.Dense, loc []int, grad *mat.Dense, lr float64) {
	for k, l := range loc {
		row := dst.Row(l)
		g := grad.Row(k)
		for i := range row {
			row[i] -= lr * g[i]
		}
	}
}

// similarityLoss scores how close translated is to target under the
// configured objective. Both losses follow the paper's Eq. 11–14
// normalization: the double sum over path positions and dimensions is
// divided by |λ| only (not by |λ|·d), which keeps per-element gradients
// large enough to matter against the single-view updates.
func (m *Model) similarityLoss(tp *autodiff.Tape, translated, target *autodiff.Tensor) *autodiff.Tensor {
	invL := 1 / float64(translated.Value.R)
	switch m.Cfg.Loss {
	case LossInnerProduct:
		// Literal Eqs. 11–14: the paper's footnote treats a low inner
		// product as "similar", so the raw sum is minimized directly.
		return tp.Scale(invL, tp.SumAll(tp.ElemMul(translated, target)))
	default:
		d := tp.Sub(translated, target)
		return tp.Scale(invL, tp.SumAll(tp.ElemMul(d, d)))
	}
}

// walkerFor exposes the view walker type for tests.
func (m *Model) walkerFor(vi int) walk.Walker { return m.walkers[vi] }

// normalizeRows rescales each row of x in place to zero mean and unit
// variance (matching LayerNormRows), returning x.
//
//lint:finite-checked eps keeps the divisor positive; inputs are embedding rows swept by guardIteration (finite.go)
func normalizeRows(x *mat.Dense) *mat.Dense {
	const eps = 1e-5
	for i := 0; i < x.R; i++ {
		row := x.Row(i)
		var mean float64
		for _, v := range row {
			mean += v
		}
		mean /= float64(len(row))
		var varr float64
		for _, v := range row {
			d := v - mean
			varr += d * d
		}
		varr /= float64(len(row))
		is := 1 / math.Sqrt(varr+eps)
		for j := range row {
			row[j] = (row[j] - mean) * is
		}
	}
	return x
}
