package transn

import (
	"fmt"

	"transn/internal/graph"
	"transn/internal/mat"
)

// Frozen is an immutable, concurrency-safe read view of a trained (or
// loaded) model: the snapshot object the serving layer hands out to
// concurrent request handlers. Freeze precomputes the final averaged
// embedding table once, so per-request reads are row lookups rather
// than per-call view averaging, and every method on Frozen only reads —
// nothing reachable from a Frozen mutates model state. The one rule is
// the model must be at rest: freeze after Train has returned (or after
// Load), never while training is still running.
type Frozen struct {
	m *Model
	// final is the precomputed Section III-C view-averaged table, one
	// row per global node.
	final *mat.Dense
	// pairIdx maps an unordered view pair {i, j} (keyed i<j) to its
	// index in m.pairs, for translator lookup by view indices.
	pairIdx map[[2]int]int
}

// Freeze builds the read-only view of the model. It sweeps the model
// for non-finite values first (CheckFinite) so a corrupt snapshot is an
// error at load time, not a NaN served to a caller.
func (m *Model) Freeze() (*Frozen, error) {
	if err := m.CheckFinite(); err != nil {
		return nil, err
	}
	f := &Frozen{m: m, final: m.Embeddings(), pairIdx: map[[2]int]int{}}
	for p, pr := range m.pairs {
		f.pairIdx[[2]int{pr.I, pr.J}] = p
	}
	return f, nil
}

// FreezeWithFinal builds the read-only view around a precomputed final
// table instead of re-averaging one, for loaders whose format already
// stores it (internal/snapfmt — where the table may alias a read-only
// mmap that must not be re-materialized on reload). The caller vouches
// that final is this model's Section III-C table and that both were
// validated finite when the snapshot was packed; only the shape is
// checked here.
func (m *Model) FreezeWithFinal(final *mat.Dense) (*Frozen, error) {
	if final == nil {
		return nil, fmt.Errorf("transn: FreezeWithFinal: nil final table")
	}
	if final.R != m.Graph.NumNodes() || final.C != m.Cfg.Dim {
		return nil, fmt.Errorf("transn: FreezeWithFinal: table is %dx%d, want %dx%d",
			final.R, final.C, m.Graph.NumNodes(), m.Cfg.Dim)
	}
	f := &Frozen{m: m, final: final, pairIdx: map[[2]int]int{}}
	for p, pr := range m.pairs {
		f.pairIdx[[2]int{pr.I, pr.J}] = p
	}
	return f, nil
}

// Model returns the underlying model, for observe-only consumers
// (internal/diag). Callers must uphold the read-only contract.
func (f *Frozen) Model() *Model { return f.m }

// Dim returns the embedding dimensionality.
func (f *Frozen) Dim() int { return f.m.Cfg.Dim }

// Graph returns the graph the model was trained on.
func (f *Frozen) Graph() *graph.Graph { return f.m.Graph }

// Views returns the model's views (one per edge type).
func (f *Frozen) Views() []*graph.View { return f.m.views }

// ViewPairs returns the trained view-pairs (empty under NoCrossView).
func (f *Frozen) ViewPairs() []graph.ViewPair { return f.m.pairs }

// FinalTable returns the precomputed final embedding table, one row per
// global node. The table is owned by the Frozen — callers must not
// mutate it.
func (f *Frozen) FinalTable() *mat.Dense { return f.final }

// Final returns global node id's final averaged embedding (Section
// III-C), a direct row reference into the precomputed table.
func (f *Frozen) Final(id graph.NodeID) []float64 {
	return f.final.Row(int(id))
}

// ViewEmbedding returns view vi's view-specific embedding of global
// node id, or nil when the node is not in the view.
func (f *Frozen) ViewEmbedding(vi int, id graph.NodeID) []float64 {
	return f.m.ViewEmbedding(vi, id)
}

// PairFor returns the trained view-pair index for views (i, j) in
// either order, or false when the two views share no common nodes (or
// the model trained under NoCrossView).
func (f *Frozen) PairFor(i, j int) (int, bool) {
	if j < i {
		i, j = j, i
	}
	p, ok := f.pairIdx[[2]int{i, j}]
	return p, ok
}

// TranslateNode runs global node id's view-from embedding through the
// trained translator stack T_{from→to} (Eqs. 8–10) and returns the
// translated vector in view to's embedding space. The translator maps
// fixed-length path matrices, so the single node is lifted to a path by
// repeating its embedding row PathLen times; the result is the mean of
// the output rows, which averages out the row-dependent feed-forward
// mixing and is deterministic for a given snapshot. The output is
// layer-normalized, like the translation targets the stack trained
// against (DESIGN.md §2).
//
//lint:finite-checked Freeze verified the model finite via CheckFinite; the forward pass and row mean cannot create non-finite values from finite inputs
func (f *Frozen) TranslateNode(from, to int, id graph.NodeID) ([]float64, error) {
	if from == to {
		return nil, fmt.Errorf("transn: translate: views are the same (%d)", from)
	}
	p, ok := f.PairFor(from, to)
	if !ok {
		return nil, fmt.Errorf("transn: translate: no trained translator between views %d and %d", from, to)
	}
	src := f.ViewEmbedding(from, id)
	if src == nil {
		return nil, fmt.Errorf("transn: translate: node %d is not in view %d", id, from)
	}
	side := 0
	if f.m.pairs[p].I != from {
		side = 1
	}
	tr := f.m.trans[p][side]
	if tr == nil {
		return nil, fmt.Errorf("transn: translate: pair %d has no trained translator", p)
	}
	L := tr.PathLen()
	in := mat.New(L, len(src))
	for k := 0; k < L; k++ {
		in.SetRow(k, src)
	}
	out := tr.Translate(in)
	res := make([]float64, out.C)
	for k := 0; k < out.R; k++ {
		row := out.Row(k)
		for c := range res {
			res[c] += row[c]
		}
	}
	inv := 1 / float64(out.R)
	for c := range res {
		res[c] *= inv
	}
	return res, nil
}

// InferNode embeds an unseen node from its edges (inductive fold-in).
// It delegates to Model.InferNode, which only reads trained tables, so
// concurrent calls are safe on a frozen model.
func (f *Frozen) InferNode(edges []NeighborEdge) ([]float64, error) {
	return f.m.InferNode(edges)
}
