package transn

import (
	"testing"

	"transn/internal/graph"
	"transn/internal/mat"
)

func TestInferNodePlacesNearNeighbors(t *testing.T) {
	g := socialGraph(t, 12, 6, 41)
	cfg := quickCfg()
	cfg.Iterations = 5
	m, err := Train(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	emb := m.Embeddings()

	// Fold in a "new user" attached to three group-0 users via UU edges.
	var group0 []graph.NodeID
	var group1 []graph.NodeID
	for _, id := range g.LabeledNodes() {
		if g.Label(id) == 0 {
			group0 = append(group0, id)
		} else {
			group1 = append(group1, id)
		}
	}
	uu := graph.EdgeType(0)
	edges := []NeighborEdge{
		{Neighbor: group0[0], Type: uu, Weight: 1},
		{Neighbor: group0[1], Type: uu, Weight: 1},
		{Neighbor: group0[2], Type: uu, Weight: 1},
	}
	vec, err := m.InferNode(edges)
	if err != nil {
		t.Fatal(err)
	}
	if len(vec) != cfg.Dim {
		t.Fatalf("inferred dim %d want %d", len(vec), cfg.Dim)
	}
	// The inferred node should be closer to group 0 than group 1.
	sim := func(ids []graph.NodeID) float64 {
		var s float64
		for _, id := range ids {
			s += mat.CosineSim(vec, emb.Row(int(id)))
		}
		return s / float64(len(ids))
	}
	if sim(group0) <= sim(group1) {
		t.Fatalf("inferred node not near its neighbors: g0 %.4f g1 %.4f",
			sim(group0), sim(group1))
	}
}

func TestInferNodeErrors(t *testing.T) {
	g := socialGraph(t, 8, 4, 42)
	m, err := Train(g, quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.InferNode(nil); err == nil {
		t.Fatal("expected error for no edges")
	}
	if _, err := m.InferNode([]NeighborEdge{{Neighbor: 0, Type: 99, Weight: 1}}); err == nil {
		t.Fatal("expected error for unknown edge type")
	}
	if _, err := m.InferNode([]NeighborEdge{{Neighbor: 0, Type: 0, Weight: 0}}); err == nil {
		t.Fatal("expected error for zero weight")
	}
	// Neighbor not present in the view of the given type: keyword nodes
	// are absent from the UU view.
	var kw graph.NodeID = -1
	for _, n := range g.Nodes {
		if g.NodeTypeNames[n.Type] == "keyword" {
			kw = n.ID
			break
		}
	}
	if _, err := m.InferNode([]NeighborEdge{{Neighbor: kw, Type: 0, Weight: 1}}); err == nil {
		t.Fatal("expected error for neighbor outside the view")
	}
}
