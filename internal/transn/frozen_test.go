package transn

import (
	"sync"
	"testing"

	"transn/internal/graph"
	"transn/internal/mat"
	"transn/internal/rngstream"
)

// trainedFrozen trains a small model with cross-view pairs and freezes
// it, failing the test on any error.
func trainedFrozen(t testing.TB) (*Model, *Frozen) {
	t.Helper()
	g := socialGraph(t, 10, 5, 43)
	m, err := Train(g, quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	f, err := m.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	return m, f
}

func TestFrozenFinalMatchesEmbeddings(t *testing.T) {
	m, f := trainedFrozen(t)
	want := m.Embeddings()
	if !f.FinalTable().Equal(want, 0) {
		t.Fatalf("frozen final table differs from Embeddings()")
	}
	for id := 0; id < m.Graph.NumNodes(); id++ {
		row := f.Final(graph.NodeID(id))
		for c, v := range row {
			if v != want.At(id, c) {
				t.Fatalf("Final(%d)[%d] = %v, want %v", id, c, v, want.At(id, c))
			}
		}
	}
}

func TestFrozenTranslateNode(t *testing.T) {
	m, f := trainedFrozen(t)
	if len(m.pairs) == 0 {
		t.Fatal("test graph produced no view-pairs")
	}
	pr := m.pairs[0]
	// Pick a common node: it has embeddings in both views.
	id := pr.Common[0]
	got, err := f.TranslateNode(pr.I, pr.J, id)
	if err != nil {
		t.Fatal(err)
	}
	// Reference: repeat the row into a path, run the raw translator,
	// average the output rows.
	tr := m.trans[0][0]
	src := m.ViewEmbedding(pr.I, id)
	L := tr.PathLen()
	in := mat.New(L, len(src))
	for k := 0; k < L; k++ {
		in.SetRow(k, src)
	}
	out := tr.Translate(in)
	want := make([]float64, out.C)
	for k := 0; k < out.R; k++ {
		for c, v := range out.Row(k) {
			want[c] += v / float64(out.R)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("dim %d want %d", len(got), len(want))
	}
	for c := range got {
		if diff := got[c] - want[c]; diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("TranslateNode[%d] = %v, want %v", c, got[c], want[c])
		}
	}
	// The reverse direction uses the dual translator and also works.
	if _, err := f.TranslateNode(pr.J, pr.I, id); err != nil {
		t.Fatalf("reverse translate: %v", err)
	}
	// Error cases: same view, untrained pair/view out of overlap, node
	// missing from the source view.
	if _, err := f.TranslateNode(pr.I, pr.I, id); err == nil {
		t.Error("same-view translate did not error")
	}
	if _, err := f.TranslateNode(pr.I, pr.J, graph.NodeID(m.Graph.NumNodes()-1)); err == nil {
		// The last node is a keyword that may well be in a view; only
		// assert when it is genuinely absent from the source view.
		if m.ViewEmbedding(pr.I, graph.NodeID(m.Graph.NumNodes()-1)) == nil {
			t.Error("translate of node outside source view did not error")
		}
	}
}

func TestFreezeRejectsNonFinite(t *testing.T) {
	g := socialGraph(t, 8, 4, 44)
	m, err := Train(g, quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	m.ViewTable(0).Set(0, 0, nan())
	if _, err := m.Freeze(); err == nil {
		t.Fatal("Freeze accepted a NaN embedding")
	}
}

func nan() float64 {
	z := 0.0
	return z / z
}

// TestTranslateConcurrent is the -race regression test for the shared
// translator scratch: Translate previously routed through Apply, whose
// lastW/lastB appends raced when two goroutines translated through the
// same trained translator. Eight goroutines hammer one translator and
// every result must equal the serial forward pass bit for bit.
func TestTranslateConcurrent(t *testing.T) {
	tr := NewTranslator(2, 4, false, 0.01, rngstream.New(7, 99))
	in := mat.New(4, 8)
	rng := rngstream.New(8, 100)
	for i := range in.Data {
		in.Data[i] = rng.NormFloat64()
	}
	want := tr.Translate(in)

	const goroutines = 8
	const rounds = 50
	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for gi := 0; gi < goroutines; gi++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				got := tr.Translate(in)
				if !got.Equal(want, 0) {
					errs <- "concurrent Translate diverged from serial result"
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}
	// The concurrent calls must leave no pending gradient records: a
	// training Apply+Step after the storm still works on clean scratch.
	if len(tr.lastW) != 0 || len(tr.lastB) != 0 {
		t.Fatalf("Translate left %d/%d pending gradient records", len(tr.lastW), len(tr.lastB))
	}
}

// TestInferNodeConcurrent hammers InferNode from eight goroutines on a
// frozen model — the serving layer's online fold-in path — and asserts
// every result matches the serial call exactly. Run under -race this
// pins that inference shares no scratch with itself or training state.
func TestInferNodeConcurrent(t *testing.T) {
	m, f := trainedFrozen(t)
	var group0 []graph.NodeID
	for _, id := range m.Graph.LabeledNodes() {
		if m.Graph.Label(id) == 0 {
			group0 = append(group0, id)
		}
	}
	if len(group0) < 3 {
		t.Fatal("not enough labeled nodes")
	}
	edges := []NeighborEdge{
		{Neighbor: group0[0], Type: 0, Weight: 1},
		{Neighbor: group0[1], Type: 0, Weight: 2},
		{Neighbor: group0[2], Type: 0, Weight: 0.5},
	}
	want, err := f.InferNode(edges)
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 8
	const rounds = 100
	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for gi := 0; gi < goroutines; gi++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				got, err := f.InferNode(edges)
				if err != nil {
					errs <- err.Error()
					return
				}
				for c := range got {
					if got[c] != want[c] {
						errs <- "concurrent InferNode diverged from serial result"
						return
					}
				}
				// Interleave the other frozen read paths the server
				// exercises under the same load.
				_ = f.Final(group0[0])
				_ = f.ViewEmbedding(0, group0[0])
			}
		}()
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}
}
