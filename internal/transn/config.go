// Package transn implements the paper's TransN framework (Section III):
// view separation, the single-view skip-gram algorithm over biased
// correlated random walks, and the cross-view dual-learning algorithm
// that translates node embeddings between views with stacks of
// self-attention + feed-forward encoders. Algorithm 1 interleaves both
// per iteration; the final embedding of a node is the average of its
// view-specific embeddings.
package transn

import (
	"fmt"
	"runtime"

	"transn/internal/obs"
)

// CrossLoss selects how translation/reconstruction similarity is scored.
type CrossLoss int

const (
	// LossMSE scores similarity as mean squared error between translated
	// and target matrices. This is the default: it implements the stated
	// goal of Eqs. 11–14 ("the translated matrix is similar to the
	// target") with a well-posed optimum. See DESIGN.md §2.
	LossMSE CrossLoss = iota
	// LossInnerProduct is the literal Eq. 11–14 objective: the mean
	// elementwise product of the two matrices, following the paper's
	// footnote that "the inner product value of two vectors is low when
	// they are similar". Kept for ablation; unbounded below, so pair it
	// with small iteration counts.
	LossInnerProduct
)

// Config holds TransN hyperparameters. Zero values are replaced by
// defaults from the paper (Section IV-A3) scaled to laptop-size inputs.
type Config struct {
	// Dim is the embedding dimensionality d (paper: 128).
	Dim int
	// WalkLength is the single-view walk length ρ (paper: 80).
	WalkLength int
	// MinWalksPerNode / MaxWalksPerNode bound the per-node path count
	// max(min(degree, Max), Min) (paper: 10 / 32).
	MinWalksPerNode int
	MaxWalksPerNode int
	// Iterations is K, the outer loop count of Algorithm 1.
	Iterations int
	// NegativeSamples per positive pair in the single-view estimator.
	NegativeSamples int
	// LRSingle is γ_single (paper initial rate: 0.025).
	LRSingle float64
	// LRCross is γ_cross for embeddings updated by the cross-view
	// algorithm; translator parameters use Adam at the same rate.
	LRCross float64
	// Encoders is H, the number of (self-attention, feed-forward)
	// encoder blocks per translator (paper: 6).
	Encoders int
	// CrossPathLen is the fixed length of common-node paths fed to
	// translators. The paper's W ∈ R^{|λ|×|λ|} requires a fixed |λ|;
	// filtered paths are cut into segments of exactly this length.
	CrossPathLen int
	// CrossPathsPerPair is T, the number of path pairs sampled per
	// view-pair per iteration.
	CrossPathsPerPair int
	// Loss selects the cross-view similarity objective.
	Loss CrossLoss
	// Seed drives all randomness. With Workers=1, or with
	// DeterministicApply set, the same seed reproduces the same
	// embeddings exactly; the default Hogwild mode (Workers>1) is
	// intentionally nondeterministic — see the concurrency model in
	// DESIGN.md §6.
	Seed int64
	// Workers is the worker-pool size: walk generation, skip-gram shard
	// training and cross-view pair steps all shard across this many
	// goroutines. 0 means runtime.NumCPU(); 1 means fully serial. Every
	// shard owns a private RNG stream derived as (Seed, kind, view/pair,
	// shard[, iteration]) — see internal/rngstream.
	Workers int
	// DeterministicApply opts into the deterministic sharded-apply mode:
	// walk corpora are still generated in parallel, but skip-gram shards
	// and cross-view pair steps apply their updates serially in shard
	// order, making training byte-reproducible for a fixed (Seed,
	// Workers). The default (false) is Hogwild-style lock-free updates:
	// faster, race-clean by construction, but nondeterministic when
	// Workers > 1.
	DeterministicApply bool
	// Parallel is deprecated: use Workers. Parallel=true behaves like
	// Workers=NumCPU with DeterministicApply=true, preserving the old
	// promise that parallel training is reproducible for a fixed seed.
	Parallel bool

	// Ablation switches (Table V).
	NoCrossView      bool // TransN-Without-Cross-View
	SimpleWalk       bool // TransN-With-Simple-Walk
	SimpleTranslator bool // TransN-With-Simple-Translator
	NoTranslation    bool // TransN-Without-Translation-Tasks
	NoReconstruction bool // TransN-Without-Reconstruction-Tasks

	// Observer, when non-nil, receives a TrainEvent at every stage
	// boundary of Algorithm 1: one per walk corpus, per skip-gram pass,
	// per cross-view pair step, and one loss-curve event per iteration.
	// Calls are serialized by the model (the callback is never invoked
	// concurrently), but in the default Hogwild mode pair events may
	// arrive in any pair order; under DeterministicApply the stream
	// order — and every non-timing field — is reproducible for a fixed
	// Seed and Workers (compare TrainEvent.Deterministic projections).
	// The callback runs inline with training: keep it cheap or hand off
	// to a channel. Not serialized by Save (functions have no wire form).
	Observer func(obs.TrainEvent)
	// ModelReady, when non-nil, is called exactly once — synchronously,
	// after initialization, before the first iteration — with the model
	// Train will return. It hands live-inspection tooling (diagnostics
	// endpoints, tests) a handle to the in-training model; Report and
	// FinalLosses are safe to call on it concurrently with training,
	// everything else must wait for Train to return. Not serialized by
	// Save (functions have no wire form).
	ModelReady func(*Model)
	// Telemetry, when non-nil, collects this run's metrics: stage spans
	// with worker attribution, counters (walks, skip-gram pairs,
	// cross-view segments), loss gauges, a cross-segment loss histogram,
	// and per-worker busy/idle time. Use obs.NewRun, then read the
	// results via Model.Report, Telemetry.ServeDebug (pprof + /metrics)
	// or Telemetry.PublishExpvar. Nil disables collection; the training
	// hot path then reduces to per-stage nil checks (see DESIGN.md §7).
	// Not serialized by Save.
	Telemetry *obs.Run
}

// DefaultConfig returns the paper's hyperparameters scaled for synthetic
// laptop-size networks: d=64, ρ=40, H=2 encoders, 5 iterations.
func DefaultConfig() Config {
	return Config{
		Dim:               64,
		WalkLength:        40,
		MinWalksPerNode:   10,
		MaxWalksPerNode:   32,
		Iterations:        5,
		NegativeSamples:   5,
		LRSingle:          0.025,
		LRCross:           0.025,
		Encoders:          2,
		CrossPathLen:      8,
		CrossPathsPerPair: 200,
		Seed:              1,
	}
}

// PaperConfig returns the unscaled hyperparameters of Section IV-A3:
// d=128, ρ=80, H=6. Expensive; provided for completeness.
func PaperConfig() Config {
	c := DefaultConfig()
	c.Dim = 128
	c.WalkLength = 80
	c.Encoders = 6
	c.Iterations = 10
	return c
}

// withDefaults fills zero fields from DefaultConfig.
func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.Dim == 0 {
		c.Dim = d.Dim
	}
	if c.WalkLength == 0 {
		c.WalkLength = d.WalkLength
	}
	if c.MinWalksPerNode == 0 {
		c.MinWalksPerNode = d.MinWalksPerNode
	}
	if c.MaxWalksPerNode == 0 {
		c.MaxWalksPerNode = d.MaxWalksPerNode
	}
	if c.Iterations == 0 {
		c.Iterations = d.Iterations
	}
	if c.NegativeSamples == 0 {
		c.NegativeSamples = d.NegativeSamples
	}
	if c.LRSingle == 0 {
		c.LRSingle = d.LRSingle
	}
	if c.LRCross == 0 {
		c.LRCross = d.LRCross
	}
	if c.Encoders == 0 {
		c.Encoders = d.Encoders
	}
	if c.CrossPathLen == 0 {
		c.CrossPathLen = d.CrossPathLen
	}
	if c.CrossPathsPerPair == 0 {
		c.CrossPathsPerPair = d.CrossPathsPerPair
	}
	if c.Seed == 0 {
		c.Seed = d.Seed
	}
	if c.Workers == 0 {
		c.Workers = runtime.NumCPU()
	}
	if c.Parallel {
		// Deprecated alias: Parallel documented deterministic concurrent
		// training, which is now the deterministic sharded-apply mode.
		c.DeterministicApply = true
	}
	return c
}

// Validate rejects configurations that cannot train.
func (c Config) Validate() error {
	if c.Dim < 1 {
		return fmt.Errorf("transn: Dim must be positive, got %d", c.Dim)
	}
	if c.WalkLength < 2 {
		return fmt.Errorf("transn: WalkLength must be at least 2, got %d", c.WalkLength)
	}
	if c.CrossPathLen < 2 {
		return fmt.Errorf("transn: CrossPathLen must be at least 2, got %d", c.CrossPathLen)
	}
	if c.Encoders < 1 {
		return fmt.Errorf("transn: Encoders must be positive, got %d", c.Encoders)
	}
	if c.Workers < 0 {
		return fmt.Errorf("transn: Workers must be non-negative, got %d", c.Workers)
	}
	if c.MinWalksPerNode > c.MaxWalksPerNode {
		return fmt.Errorf("transn: MinWalksPerNode %d > MaxWalksPerNode %d",
			c.MinWalksPerNode, c.MaxWalksPerNode)
	}
	if c.NoTranslation && c.NoReconstruction && !c.NoCrossView {
		return fmt.Errorf("transn: disabling both cross-view tasks leaves nothing to train; set NoCrossView instead")
	}
	return nil
}
