package transn

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"transn/internal/graph"
	"transn/internal/mat"
	"transn/internal/obs"
	"transn/internal/par"
	"transn/internal/rngstream"
	"transn/internal/skipgram"
	"transn/internal/walk"
)

// RNG stream kinds. Every random stream consumed during training is
// derived exactly once, as rngstream.Derive(Seed, kind, index...), so
// the full stream layout is auditable from these constants:
//
//	streamInit       (view)            view-embedding initialization
//	streamTranslator (pair, side)      translator parameter init
//	streamWalk       (view, iteration) walk-corpus base seed; walk
//	                                   shards derive (base, shard)
//	streamTrain      (view, iteration) skip-gram base seed; training
//	                                   shards derive (base, shard)
//	streamCross      (pair)            cross-view segment sampling, one
//	                                   persistent stream per pair
//
// No rand.Rand is ever shared between goroutines: each shard and each
// pair step owns its stream. See DESIGN.md §6.
const (
	streamInit int64 = iota
	streamTranslator
	streamWalk
	streamTrain
	streamCross
)

// Model is a trained TransN instance. Construct one with Train.
type Model struct {
	Cfg   Config
	Graph *graph.Graph

	views []*graph.View
	pairs []graph.ViewPair
	// subviews[p] are the paired-subviews (φ'_i, φ'_j) of pairs[p].
	subviews [][2]*graph.View
	// emb[v] holds view v's view-specific node embeddings (local index).
	emb []*skipgram.Model
	// samplers[v] draws negatives inside view v.
	samplers []*skipgram.NegSampler
	// walkers[v] samples single-view paths in view v.
	walkers []walk.Walker
	// subWalkers[p] sample cross-view paths in each paired-subview.
	subWalkers [][2]walk.Walker
	// trans[p] = {T_{i→j}, T_{j→i}} for pairs[p].
	trans [][2]*Translator
	// pairRngs[p] is pair p's persistent sampling stream (streamCross).
	// A pair step runs on at most one worker at a time, so the stream is
	// never shared between goroutines.
	pairRngs []*rand.Rand

	// crossEmbedUpdates gates embedding updates in the cross-view step:
	// during the first iteration only the translators train (warm-up),
	// so embeddings receive gradients through an already-meaningful map.
	crossEmbedUpdates bool

	// tel is the run's resolved telemetry (metric handles looked up
	// once, nil-safe when Cfg.Telemetry is nil); obsMu serializes
	// Observer callbacks from concurrent pair steps.
	tel   telemetry
	obsMu sync.Mutex

	// nonFinite latches once the iteration guard (finite.go) sees a
	// NaN/Inf loss, translator parameter or sampled embedding value.
	nonFinite bool

	// History records per-iteration mean losses for diagnostics. histMu
	// guards the appends against concurrent Report/FinalLosses readers
	// (e.g. a live diagnostics endpoint polling mid-training); read the
	// field directly only after Train has returned.
	History []IterStats
	histMu  sync.Mutex
}

// IterStats captures one Algorithm 1 iteration's diagnostics.
type IterStats struct {
	Iteration  int
	SingleLoss float64 // mean skip-gram pair loss across views
	CrossLoss  float64 // mean cross-view segment loss across pairs
	// ViewLoss is the per-view mean skip-gram pair loss, indexed like
	// Views() (zero for empty views that trained nothing).
	ViewLoss []float64
	// PairLoss is the per-pair mean cross-view segment loss, indexed
	// like ViewPairs() (nil under the NoCrossView ablation).
	PairLoss []float64
	// Translation and Reconstruction split CrossLoss into its Eq. 11–12
	// and Eq. 13–14 components (means across pairs).
	Translation    float64
	Reconstruction float64
}

// FinalLosses returns the last iteration's per-view single-view losses
// and per-pair cross-view losses, so callers and tests can assert
// convergence without digging through History. Both slices are nil when
// the model has not trained (e.g. loaded via Load).
func (m *Model) FinalLosses() (viewLoss, pairLoss []float64) {
	m.histMu.Lock()
	defer m.histMu.Unlock()
	if len(m.History) == 0 {
		return nil, nil
	}
	last := m.History[len(m.History)-1]
	return last.ViewLoss, last.PairLoss
}

// telemetry holds the metric handles a training run writes to. All
// fields are nil-safe: with Cfg.Telemetry unset every method reduces to
// a nil check at a stage boundary, keeping the disabled-path cost
// within the budget of DESIGN.md §7.
type telemetry struct {
	run       *obs.Run
	walkPaths *obs.Counter
	sgPairs   *obs.Counter
	crossSegs *obs.Counter
	segLoss   *obs.Histogram

	lossSingle *obs.Gauge
	lossCross  *obs.Gauge
	lossTrans  *obs.Gauge
	lossRecon  *obs.Gauge
}

func newTelemetry(run *obs.Run) telemetry {
	t := telemetry{run: run}
	if run == nil {
		return t
	}
	t.walkPaths = run.Reg.Counter(obs.MetricWalkPaths)
	t.sgPairs = run.Reg.Counter(obs.MetricSkipgramPairs)
	t.crossSegs = run.Reg.Counter(obs.MetricCrossSegments)
	t.segLoss = run.Reg.Histogram(obs.MetricCrossSegmentLoss,
		[]float64{0.125, 0.25, 0.5, 1, 2, 4, 8, 16})
	t.lossSingle = run.Reg.Gauge(obs.MetricLossSingle)
	t.lossCross = run.Reg.Gauge(obs.MetricLossCross)
	t.lossTrans = run.Reg.Gauge(obs.MetricLossTranslation)
	t.lossRecon = run.Reg.Gauge(obs.MetricLossReconstruction)
	return t
}

func (t *telemetry) trace() *obs.Tracer {
	if t.run == nil {
		return nil
	}
	return t.run.Trace
}

// recordPool folds one worker-pool fan-out's timing into the run.
func (t *telemetry) recordPool(st par.Stats) {
	if t.run == nil || len(st.Workers) == 0 {
		return
	}
	samples := make([]obs.WorkerSample, len(st.Workers))
	for i, w := range st.Workers {
		samples[i] = obs.WorkerSample{Worker: w.Worker, Busy: w.Busy, Shards: w.Shards}
	}
	t.run.RecordPool(st.Wall, samples)
}

// emit delivers ev to the Observer callback with the timing fields
// filled from d. Calls are serialized: pair steps emit from worker
// goroutines in Hogwild mode, and the contract promises the callback is
// never invoked concurrently.
func (m *Model) emit(ev obs.TrainEvent, d time.Duration) {
	if m.Cfg.Observer == nil {
		return
	}
	ev.DurationSeconds = d.Seconds()
	if d > 0 && ev.Examples > 0 {
		ev.ExamplesPerSec = float64(ev.Examples) / d.Seconds()
	}
	m.obsMu.Lock()
	defer m.obsMu.Unlock()
	m.Cfg.Observer(ev)
}

// Train runs Algorithm 1 on g and returns the trained model. Work is
// sharded across a pool of Cfg.Workers goroutines *within* each view:
// walk generation and skip-gram training shard over start nodes and
// walk batches, and cross-view pair steps fan out over the same pool —
// so a graph with few edge types still saturates a large machine. See
// Config.Workers and Config.DeterministicApply for the concurrency and
// reproducibility contract.
func Train(g *graph.Graph, cfg Config) (*Model, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := &Model{
		Cfg:   cfg,
		Graph: g,
		views: g.Views(),
		tel:   newTelemetry(cfg.Telemetry),
	}
	if len(m.views) == 0 {
		return nil, fmt.Errorf("transn: graph has no edge types, nothing to train")
	}
	trainSpan := m.tel.trace().Start(obs.SpanTrain)
	m.initViews()
	if !cfg.NoCrossView {
		m.initPairs()
	}
	if cfg.ModelReady != nil {
		cfg.ModelReady(m)
	}
	for iter := 0; iter < cfg.Iterations; iter++ {
		frac := float64(iter) / float64(cfg.Iterations)
		lrS := cfg.LRSingle * (1 - frac)
		if lrS < cfg.LRSingle*1e-4 {
			lrS = cfg.LRSingle * 1e-4
		}
		iterSpan := m.tel.trace().Start(obs.SpanIteration).Epoch(iter)
		var st IterStats
		st.Iteration = iter
		st.ViewLoss = make([]float64, len(m.views))
		// Single-view passes: views run in sequence, each view sharding
		// its walks and skip-gram updates across the full pool. (The old
		// scheme of one goroutine per view capped parallelism at the
		// number of edge types.)
		var sum float64
		var n, iterPairs int
		for vi := range m.views {
			if m.views[vi].NumNodes() == 0 {
				continue
			}
			loss, pairs := m.singleViewStep(vi, iter, lrS)
			st.ViewLoss[vi] = loss
			sum += loss
			iterPairs += pairs
			n++
		}
		if n > 0 {
			st.SingleLoss = sum / float64(n)
		}
		if !cfg.NoCrossView && len(m.pairs) > 0 {
			m.crossEmbedUpdates = iter > 0 || cfg.Iterations == 1
			// Pair steps fan out over the pool. Pairs sharing a view make
			// unsynchronized (Hogwild) updates to that view's embedding
			// rows — see the gather/scatter helpers in crossview.go. The
			// deterministic mode applies pairs serially in pair order.
			results := make([]crossResult, len(m.pairs))
			step := func(worker, pi int) {
				results[pi] = m.crossViewStep(pi, iter, worker, m.pairRngs[pi])
			}
			poolSize := cfg.Workers
			if cfg.DeterministicApply {
				// One-worker pools run inline in ascending order, so this
				// is the serial pair-order apply the mode promises.
				poolSize = 1
			}
			m.tel.recordPool(par.RunTimedWorker(poolSize, len(m.pairs), step))
			st.PairLoss = make([]float64, len(m.pairs))
			var csum, tsum, rsum float64
			for pi, r := range results {
				st.PairLoss[pi] = r.loss
				csum += r.loss
				tsum += r.translation
				rsum += r.reconstruction
			}
			np := float64(len(m.pairs))
			st.CrossLoss = csum / np
			st.Translation = tsum / np
			st.Reconstruction = rsum / np
		}
		m.histMu.Lock()
		m.History = append(m.History, st)
		m.histMu.Unlock()
		m.tel.lossSingle.Set(st.SingleLoss)
		m.tel.lossCross.Set(st.CrossLoss)
		m.tel.lossTrans.Set(st.Translation)
		m.tel.lossRecon.Set(st.Reconstruction)
		m.emit(obs.TrainEvent{
			Stage: obs.StageIteration, View: -1, Pair: -1, Epoch: iter,
			LSingle: st.SingleLoss, LCross: st.CrossLoss,
			LTranslation: st.Translation, LReconstruction: st.Reconstruction,
			Examples: iterPairs,
		}, iterSpan.End())
		// Shard-merge boundary: every shard's updates are visible, the
		// iteration's losses are merged — the cheap place to notice the
		// run has gone non-finite (see finite.go).
		m.guardIteration(&st)
	}
	trainSpan.End()
	return m, nil
}

// Report builds the run's telemetry report: per-stage wall time,
// counters, gauges, per-worker busy/idle breakdown (all from
// Cfg.Telemetry, empty when it is nil), plus the loss sections filled
// from the model — final per-view L_single, final per-pair L_cross and
// the per-iteration loss curve. cmd/transn writes this as the -report
// file and cmd/benchrun embeds the same shape.
// Report is safe to call while Train is still running (History access
// is synchronized) — the live diagnostics endpoint does exactly that.
func (m *Model) Report() *obs.Report {
	rep := m.Cfg.Telemetry.Report("train")
	m.histMu.Lock()
	defer m.histMu.Unlock()
	if len(m.History) == 0 {
		return rep
	}
	last := m.History[len(m.History)-1]
	for vi := range m.views {
		if vi < len(last.ViewLoss) && m.views[vi].NumNodes() > 0 {
			rep.Views = append(rep.Views, obs.ViewReport{View: vi, LSingle: last.ViewLoss[vi]})
		}
	}
	for pi, pr := range m.pairs {
		if pi < len(last.PairLoss) {
			rep.Pairs = append(rep.Pairs, obs.PairReport{Pair: pi, I: pr.I, J: pr.J, LCross: last.PairLoss[pi]})
		}
	}
	for _, st := range m.History {
		rep.Iterations = append(rep.Iterations, obs.IterationReport{
			Iteration: st.Iteration,
			LSingle:   st.SingleLoss,
			LCross:    st.CrossLoss,
			ViewLoss:  st.ViewLoss,
			PairLoss:  st.PairLoss,
		})
	}
	return rep
}

// initViews builds per-view embeddings, negative samplers and walkers.
// Each view's embedding table is initialized from its own derived
// stream (streamInit, view) — never from a generator shared with the
// training loop — so initialization is identical no matter how many
// workers later train.
func (m *Model) initViews() {
	m.emb = make([]*skipgram.Model, len(m.views))
	m.samplers = make([]*skipgram.NegSampler, len(m.views))
	m.walkers = make([]walk.Walker, len(m.views))
	for i, v := range m.views {
		if v.NumNodes() == 0 {
			continue
		}
		m.emb[i] = skipgram.NewModel(v.NumNodes(), m.Cfg.Dim, rngstream.New(m.Cfg.Seed, streamInit, int64(i)))
		freq := make([]float64, v.NumNodes())
		for l := range freq {
			freq[l] = v.WeightedDegree(l)
		}
		m.samplers[i] = skipgram.NewNegSampler(freq)
		if m.Cfg.SimpleWalk {
			m.walkers[i] = walk.Simple{}
		} else {
			m.walkers[i] = walk.NewCorrelated(v)
		}
	}
}

// initPairs builds view-pairs, paired-subviews, their walkers, the two
// translators per pair, and each pair's private sampling stream.
func (m *Model) initPairs() {
	m.pairs = m.Graph.ViewPairs()
	m.subviews = make([][2]*graph.View, len(m.pairs))
	m.subWalkers = make([][2]walk.Walker, len(m.pairs))
	m.trans = make([][2]*Translator, len(m.pairs))
	m.pairRngs = make([]*rand.Rand, len(m.pairs))
	for p, pr := range m.pairs {
		si := graph.PairedSubview(m.views[pr.I], pr.Common)
		sj := graph.PairedSubview(m.views[pr.J], pr.Common)
		m.subviews[p] = [2]*graph.View{si, sj}
		m.subWalkers[p] = [2]walk.Walker{walk.NewCorrelated(si), walk.NewCorrelated(sj)}
		m.trans[p] = [2]*Translator{
			NewTranslator(m.Cfg.Encoders, m.Cfg.CrossPathLen, m.Cfg.SimpleTranslator, m.Cfg.LRCross,
				rngstream.New(m.Cfg.Seed, streamTranslator, int64(p), 0)),
			NewTranslator(m.Cfg.Encoders, m.Cfg.CrossPathLen, m.Cfg.SimpleTranslator, m.Cfg.LRCross,
				rngstream.New(m.Cfg.Seed, streamTranslator, int64(p), 1)),
		}
		m.pairRngs[p] = rngstream.New(m.Cfg.Seed, streamCross, int64(p))
	}
}

// singleViewStep runs one skip-gram pass over fresh walks from view vi
// (Algorithm 1 lines 3–7) and returns the mean pair loss plus the
// number of training pairs applied. Walk generation shards start nodes
// across the pool under the per-iteration base stream (streamWalk, vi,
// iter); training shards the resulting corpus under (streamTrain, vi,
// iter). Both phases are traced as "walk" / "skipgram" spans and
// emitted as StageWalk / StageSkipGram events.
func (m *Model) singleViewStep(vi, iter int, lr float64) (float64, int) {
	v := m.views[vi]
	cfg := walk.CorpusConfig{
		WalkLength:      m.Cfg.WalkLength,
		MinWalksPerNode: m.Cfg.MinWalksPerNode,
		MaxWalksPerNode: m.Cfg.MaxWalksPerNode,
	}
	walkSeed := rngstream.Derive(m.Cfg.Seed, streamWalk, int64(vi), int64(iter))
	trainSeed := rngstream.Derive(m.Cfg.Seed, streamTrain, int64(vi), int64(iter))
	walkSpan := m.tel.trace().Start(obs.SpanWalk).View(vi).Epoch(iter)
	var paths [][]int
	if m.Cfg.SimpleWalk {
		// Ablation: uniformly random starting nodes, weights ignored.
		// Start nodes are a single sequential draw, so this path stays
		// serial; the subsequent training pass still shards.
		rng := rngstream.New(walkSeed)
		total := 0
		for l := 0; l < v.NumNodes(); l++ {
			total += cfg.WalksFor(v.Degree(l))
		}
		for i := 0; i < total; i++ {
			p := m.walkers[vi].Walk(v, rng.Intn(v.NumNodes()), cfg.WalkLength, rng)
			if len(p) >= 2 {
				paths = append(paths, p)
			}
		}
	} else {
		var wst par.Stats
		paths, wst = walk.CorpusParallelStats(v, m.walkers[vi], cfg, walkSeed, m.Cfg.Workers)
		m.tel.recordPool(wst)
	}
	m.tel.walkPaths.Add(int64(len(paths)))
	m.emit(obs.TrainEvent{
		Stage: obs.StageWalk, View: vi, Pair: -1, Epoch: iter, Examples: len(paths),
	}, walkSpan.End())

	offsets := skipgram.ContextOffsets(v.Hetero)
	sgSpan := m.tel.trace().Start(obs.SpanSkipGram).View(vi).Epoch(iter)
	loss, pairs, sst := m.emb[vi].TrainCorpusParallelStats(paths, offsets, m.Cfg.NegativeSamples, lr,
		m.samplers[vi], trainSeed, m.Cfg.Workers, m.Cfg.DeterministicApply)
	m.tel.recordPool(sst)
	m.tel.sgPairs.Add(int64(pairs))
	m.emit(obs.TrainEvent{
		Stage: obs.StageSkipGram, View: vi, Pair: -1, Epoch: iter,
		LSingle: loss, Examples: pairs,
	}, sgSpan.End())
	return loss, pairs
}

// Embeddings returns the final node embeddings: one row per global node,
// each the average of the node's view-specific embeddings (Section
// III-C). Nodes absent from every view get a zero row.
//
//lint:finite-checked averages view embeddings that trained under the per-iteration guard (finite.go); no new float math beyond the mean
func (m *Model) Embeddings() *mat.Dense {
	out := mat.New(m.Graph.NumNodes(), m.Cfg.Dim)
	counts := make([]int, m.Graph.NumNodes())
	for vi, v := range m.views {
		if m.emb[vi] == nil {
			continue
		}
		for l := 0; l < v.NumNodes(); l++ {
			gid := v.Global(l)
			row := out.Row(int(gid))
			src := m.emb[vi].In.Row(l)
			for d := range row {
				row[d] += src[d]
			}
			counts[gid]++
		}
	}
	for i, c := range counts {
		if c > 1 {
			row := out.Row(i)
			inv := 1 / float64(c)
			for d := range row {
				row[d] *= inv
			}
		}
	}
	return out
}

// ViewEmbedding exposes view vi's view-specific embedding of global node
// id, or nil when the node is not in the view. Used by tests and by the
// cross-view inspection tooling.
func (m *Model) ViewEmbedding(vi int, id graph.NodeID) []float64 {
	v := m.views[vi]
	l := v.Local(id)
	if l < 0 || m.emb[vi] == nil {
		return nil
	}
	return m.emb[vi].In.Row(l)
}

// ViewTable returns view vi's raw view-specific embedding table (one
// row per view-local node), or nil for empty views. The returned matrix
// is the live training table, not a copy: internal/diag reads it to
// compute norm distributions and collapse checks, and tests write to it
// to inject corruption — never mutate it while Train is running.
func (m *Model) ViewTable(vi int) *mat.Dense {
	if m.emb[vi] == nil {
		return nil
	}
	return m.emb[vi].In
}

// Views returns the model's views (one per edge type).
func (m *Model) Views() []*graph.View { return m.views }

// ViewPairs returns the view-pairs the cross-view algorithm trained on
// (empty under the NoCrossView ablation).
func (m *Model) ViewPairs() []graph.ViewPair { return m.pairs }

// Translators returns the translator pair {T_i→j, T_j→i} for pair index
// p, or nil under the NoCrossView ablation.
func (m *Model) Translators(p int) [2]*Translator {
	if m.trans == nil {
		return [2]*Translator{}
	}
	return m.trans[p]
}
