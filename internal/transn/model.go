package transn

import (
	"fmt"
	"math/rand"

	"transn/internal/graph"
	"transn/internal/mat"
	"transn/internal/par"
	"transn/internal/rngstream"
	"transn/internal/skipgram"
	"transn/internal/walk"
)

// RNG stream kinds. Every random stream consumed during training is
// derived exactly once, as rngstream.Derive(Seed, kind, index...), so
// the full stream layout is auditable from these constants:
//
//	streamInit       (view)            view-embedding initialization
//	streamTranslator (pair, side)      translator parameter init
//	streamWalk       (view, iteration) walk-corpus base seed; walk
//	                                   shards derive (base, shard)
//	streamTrain      (view, iteration) skip-gram base seed; training
//	                                   shards derive (base, shard)
//	streamCross      (pair)            cross-view segment sampling, one
//	                                   persistent stream per pair
//
// No rand.Rand is ever shared between goroutines: each shard and each
// pair step owns its stream. See DESIGN.md §6.
const (
	streamInit int64 = iota
	streamTranslator
	streamWalk
	streamTrain
	streamCross
)

// Model is a trained TransN instance. Construct one with Train.
type Model struct {
	Cfg   Config
	Graph *graph.Graph

	views []*graph.View
	pairs []graph.ViewPair
	// subviews[p] are the paired-subviews (φ'_i, φ'_j) of pairs[p].
	subviews [][2]*graph.View
	// emb[v] holds view v's view-specific node embeddings (local index).
	emb []*skipgram.Model
	// samplers[v] draws negatives inside view v.
	samplers []*skipgram.NegSampler
	// walkers[v] samples single-view paths in view v.
	walkers []walk.Walker
	// subWalkers[p] sample cross-view paths in each paired-subview.
	subWalkers [][2]walk.Walker
	// trans[p] = {T_{i→j}, T_{j→i}} for pairs[p].
	trans [][2]*Translator
	// pairRngs[p] is pair p's persistent sampling stream (streamCross).
	// A pair step runs on at most one worker at a time, so the stream is
	// never shared between goroutines.
	pairRngs []*rand.Rand

	// crossEmbedUpdates gates embedding updates in the cross-view step:
	// during the first iteration only the translators train (warm-up),
	// so embeddings receive gradients through an already-meaningful map.
	crossEmbedUpdates bool

	// History records per-iteration mean losses for diagnostics.
	History []IterStats
}

// IterStats captures one Algorithm 1 iteration's diagnostics.
type IterStats struct {
	Iteration  int
	SingleLoss float64 // mean skip-gram pair loss across views
	CrossLoss  float64 // mean cross-view segment loss across pairs
}

// Train runs Algorithm 1 on g and returns the trained model. Work is
// sharded across a pool of Cfg.Workers goroutines *within* each view:
// walk generation and skip-gram training shard over start nodes and
// walk batches, and cross-view pair steps fan out over the same pool —
// so a graph with few edge types still saturates a large machine. See
// Config.Workers and Config.DeterministicApply for the concurrency and
// reproducibility contract.
func Train(g *graph.Graph, cfg Config) (*Model, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := &Model{
		Cfg:   cfg,
		Graph: g,
		views: g.Views(),
	}
	if len(m.views) == 0 {
		return nil, fmt.Errorf("transn: graph has no edge types, nothing to train")
	}
	m.initViews()
	if !cfg.NoCrossView {
		m.initPairs()
	}
	for iter := 0; iter < cfg.Iterations; iter++ {
		frac := float64(iter) / float64(cfg.Iterations)
		lrS := cfg.LRSingle * (1 - frac)
		if lrS < cfg.LRSingle*1e-4 {
			lrS = cfg.LRSingle * 1e-4
		}
		var st IterStats
		st.Iteration = iter
		// Single-view passes: views run in sequence, each view sharding
		// its walks and skip-gram updates across the full pool. (The old
		// scheme of one goroutine per view capped parallelism at the
		// number of edge types.)
		var sum float64
		var n int
		for vi := range m.views {
			if m.views[vi].NumNodes() == 0 {
				continue
			}
			sum += m.singleViewStep(vi, iter, lrS)
			n++
		}
		if n > 0 {
			st.SingleLoss = sum / float64(n)
		}
		if !cfg.NoCrossView && len(m.pairs) > 0 {
			m.crossEmbedUpdates = iter > 0 || cfg.Iterations == 1
			// Pair steps fan out over the pool. Pairs sharing a view make
			// unsynchronized (Hogwild) updates to that view's embedding
			// rows — see the gather/scatter helpers in crossview.go. The
			// deterministic mode applies pairs serially in pair order.
			closs := make([]float64, len(m.pairs))
			step := func(pi int) {
				closs[pi] = m.crossViewStep(pi, m.pairRngs[pi])
			}
			if cfg.DeterministicApply {
				for pi := range m.pairs {
					step(pi)
				}
			} else {
				par.Run(cfg.Workers, len(m.pairs), step)
			}
			var csum float64
			for _, c := range closs {
				csum += c
			}
			st.CrossLoss = csum / float64(len(m.pairs))
		}
		m.History = append(m.History, st)
	}
	return m, nil
}

// initViews builds per-view embeddings, negative samplers and walkers.
// Each view's embedding table is initialized from its own derived
// stream (streamInit, view) — never from a generator shared with the
// training loop — so initialization is identical no matter how many
// workers later train.
func (m *Model) initViews() {
	m.emb = make([]*skipgram.Model, len(m.views))
	m.samplers = make([]*skipgram.NegSampler, len(m.views))
	m.walkers = make([]walk.Walker, len(m.views))
	for i, v := range m.views {
		if v.NumNodes() == 0 {
			continue
		}
		m.emb[i] = skipgram.NewModel(v.NumNodes(), m.Cfg.Dim, rngstream.New(m.Cfg.Seed, streamInit, int64(i)))
		freq := make([]float64, v.NumNodes())
		for l := range freq {
			freq[l] = v.WeightedDegree(l)
		}
		m.samplers[i] = skipgram.NewNegSampler(freq)
		if m.Cfg.SimpleWalk {
			m.walkers[i] = walk.Simple{}
		} else {
			m.walkers[i] = walk.NewCorrelated(v)
		}
	}
}

// initPairs builds view-pairs, paired-subviews, their walkers, the two
// translators per pair, and each pair's private sampling stream.
func (m *Model) initPairs() {
	m.pairs = m.Graph.ViewPairs()
	m.subviews = make([][2]*graph.View, len(m.pairs))
	m.subWalkers = make([][2]walk.Walker, len(m.pairs))
	m.trans = make([][2]*Translator, len(m.pairs))
	m.pairRngs = make([]*rand.Rand, len(m.pairs))
	for p, pr := range m.pairs {
		si := graph.PairedSubview(m.views[pr.I], pr.Common)
		sj := graph.PairedSubview(m.views[pr.J], pr.Common)
		m.subviews[p] = [2]*graph.View{si, sj}
		m.subWalkers[p] = [2]walk.Walker{walk.NewCorrelated(si), walk.NewCorrelated(sj)}
		m.trans[p] = [2]*Translator{
			NewTranslator(m.Cfg.Encoders, m.Cfg.CrossPathLen, m.Cfg.SimpleTranslator, m.Cfg.LRCross,
				rngstream.New(m.Cfg.Seed, streamTranslator, int64(p), 0)),
			NewTranslator(m.Cfg.Encoders, m.Cfg.CrossPathLen, m.Cfg.SimpleTranslator, m.Cfg.LRCross,
				rngstream.New(m.Cfg.Seed, streamTranslator, int64(p), 1)),
		}
		m.pairRngs[p] = rngstream.New(m.Cfg.Seed, streamCross, int64(p))
	}
}

// singleViewStep runs one skip-gram pass over fresh walks from view vi
// (Algorithm 1 lines 3–7) and returns the mean pair loss. Walk
// generation shards start nodes across the pool under the per-iteration
// base stream (streamWalk, vi, iter); training shards the resulting
// corpus under (streamTrain, vi, iter).
func (m *Model) singleViewStep(vi, iter int, lr float64) float64 {
	v := m.views[vi]
	cfg := walk.CorpusConfig{
		WalkLength:      m.Cfg.WalkLength,
		MinWalksPerNode: m.Cfg.MinWalksPerNode,
		MaxWalksPerNode: m.Cfg.MaxWalksPerNode,
	}
	walkSeed := rngstream.Derive(m.Cfg.Seed, streamWalk, int64(vi), int64(iter))
	trainSeed := rngstream.Derive(m.Cfg.Seed, streamTrain, int64(vi), int64(iter))
	var paths [][]int
	if m.Cfg.SimpleWalk {
		// Ablation: uniformly random starting nodes, weights ignored.
		// Start nodes are a single sequential draw, so this path stays
		// serial; the subsequent training pass still shards.
		rng := rngstream.New(walkSeed)
		total := 0
		for l := 0; l < v.NumNodes(); l++ {
			total += cfg.WalksFor(v.Degree(l))
		}
		for i := 0; i < total; i++ {
			p := m.walkers[vi].Walk(v, rng.Intn(v.NumNodes()), cfg.WalkLength, rng)
			if len(p) >= 2 {
				paths = append(paths, p)
			}
		}
	} else {
		paths = walk.CorpusParallel(v, m.walkers[vi], cfg, walkSeed, m.Cfg.Workers)
	}
	offsets := skipgram.ContextOffsets(v.Hetero)
	return m.emb[vi].TrainCorpusParallel(paths, offsets, m.Cfg.NegativeSamples, lr, m.samplers[vi],
		trainSeed, m.Cfg.Workers, m.Cfg.DeterministicApply)
}

// Embeddings returns the final node embeddings: one row per global node,
// each the average of the node's view-specific embeddings (Section
// III-C). Nodes absent from every view get a zero row.
func (m *Model) Embeddings() *mat.Dense {
	out := mat.New(m.Graph.NumNodes(), m.Cfg.Dim)
	counts := make([]int, m.Graph.NumNodes())
	for vi, v := range m.views {
		if m.emb[vi] == nil {
			continue
		}
		for l := 0; l < v.NumNodes(); l++ {
			gid := v.Global(l)
			row := out.Row(int(gid))
			src := m.emb[vi].In.Row(l)
			for d := range row {
				row[d] += src[d]
			}
			counts[gid]++
		}
	}
	for i, c := range counts {
		if c > 1 {
			row := out.Row(i)
			inv := 1 / float64(c)
			for d := range row {
				row[d] *= inv
			}
		}
	}
	return out
}

// ViewEmbedding exposes view vi's view-specific embedding of global node
// id, or nil when the node is not in the view. Used by tests and by the
// cross-view inspection tooling.
func (m *Model) ViewEmbedding(vi int, id graph.NodeID) []float64 {
	v := m.views[vi]
	l := v.Local(id)
	if l < 0 || m.emb[vi] == nil {
		return nil
	}
	return m.emb[vi].In.Row(l)
}

// Views returns the model's views (one per edge type).
func (m *Model) Views() []*graph.View { return m.views }

// ViewPairs returns the view-pairs the cross-view algorithm trained on
// (empty under the NoCrossView ablation).
func (m *Model) ViewPairs() []graph.ViewPair { return m.pairs }

// Translators returns the translator pair {T_i→j, T_j→i} for pair index
// p, or nil under the NoCrossView ablation.
func (m *Model) Translators(p int) [2]*Translator {
	if m.trans == nil {
		return [2]*Translator{}
	}
	return m.trans[p]
}
