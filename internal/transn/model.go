package transn

import (
	"fmt"
	"math/rand"
	"sync"

	"transn/internal/graph"
	"transn/internal/mat"
	"transn/internal/skipgram"
	"transn/internal/walk"
)

// Model is a trained TransN instance. Construct one with Train.
type Model struct {
	Cfg   Config
	Graph *graph.Graph

	views []*graph.View
	pairs []graph.ViewPair
	// subviews[p] are the paired-subviews (φ'_i, φ'_j) of pairs[p].
	subviews [][2]*graph.View
	// emb[v] holds view v's view-specific node embeddings (local index).
	emb []*skipgram.Model
	// samplers[v] draws negatives inside view v.
	samplers []*skipgram.NegSampler
	// walkers[v] samples single-view paths in view v.
	walkers []walk.Walker
	// viewRngs[v] is view v's private RNG under Config.Parallel.
	viewRngs []*rand.Rand
	// subWalkers[p] sample cross-view paths in each paired-subview.
	subWalkers [][2]walk.Walker
	// trans[p] = {T_{i→j}, T_{j→i}} for pairs[p].
	trans [][2]*Translator

	rng *rand.Rand

	// crossEmbedUpdates gates embedding updates in the cross-view step:
	// during the first iteration only the translators train (warm-up),
	// so embeddings receive gradients through an already-meaningful map.
	crossEmbedUpdates bool

	// History records per-iteration mean losses for diagnostics.
	History []IterStats
}

// IterStats captures one Algorithm 1 iteration's diagnostics.
type IterStats struct {
	Iteration  int
	SingleLoss float64 // mean skip-gram pair loss across views
	CrossLoss  float64 // mean cross-view segment loss across pairs
}

// Train runs Algorithm 1 on g and returns the trained model.
func Train(g *graph.Graph, cfg Config) (*Model, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := &Model{
		Cfg:   cfg,
		Graph: g,
		views: g.Views(),
		rng:   rand.New(rand.NewSource(cfg.Seed)),
	}
	if len(m.views) == 0 {
		return nil, fmt.Errorf("transn: graph has no edge types, nothing to train")
	}
	m.initViews()
	if !cfg.NoCrossView {
		m.initPairs()
	}
	for iter := 0; iter < cfg.Iterations; iter++ {
		frac := float64(iter) / float64(cfg.Iterations)
		lrS := cfg.LRSingle * (1 - frac)
		if lrS < cfg.LRSingle*1e-4 {
			lrS = cfg.LRSingle * 1e-4
		}
		var st IterStats
		st.Iteration = iter
		losses := make([]float64, len(m.views))
		active := make([]bool, len(m.views))
		if cfg.Parallel {
			var wg sync.WaitGroup
			for vi := range m.views {
				if m.views[vi].NumNodes() == 0 {
					continue
				}
				active[vi] = true
				wg.Add(1)
				go func(vi int) {
					defer wg.Done()
					losses[vi] = m.singleViewStep(vi, lrS, m.viewRngs[vi])
				}(vi)
			}
			wg.Wait()
		} else {
			for vi := range m.views {
				if m.views[vi].NumNodes() == 0 {
					continue
				}
				active[vi] = true
				losses[vi] = m.singleViewStep(vi, lrS, m.rng)
			}
		}
		var sum float64
		var n int
		for vi, ok := range active {
			if ok {
				sum += losses[vi]
				n++
			}
		}
		if n > 0 {
			st.SingleLoss = sum / float64(n)
		}
		if !cfg.NoCrossView && len(m.pairs) > 0 {
			m.crossEmbedUpdates = iter > 0 || cfg.Iterations == 1
			var csum float64
			for pi := range m.pairs {
				csum += m.crossViewStep(pi)
			}
			st.CrossLoss = csum / float64(len(m.pairs))
		}
		m.History = append(m.History, st)
	}
	return m, nil
}

// initViews builds per-view embeddings, negative samplers and walkers.
func (m *Model) initViews() {
	m.emb = make([]*skipgram.Model, len(m.views))
	m.samplers = make([]*skipgram.NegSampler, len(m.views))
	m.walkers = make([]walk.Walker, len(m.views))
	if m.Cfg.Parallel {
		m.viewRngs = make([]*rand.Rand, len(m.views))
		for i := range m.viewRngs {
			m.viewRngs[i] = rand.New(rand.NewSource(m.Cfg.Seed*1000003 + int64(i)))
		}
	}
	for i, v := range m.views {
		if v.NumNodes() == 0 {
			continue
		}
		m.emb[i] = skipgram.NewModel(v.NumNodes(), m.Cfg.Dim, m.rng)
		freq := make([]float64, v.NumNodes())
		for l := range freq {
			freq[l] = v.WeightedDegree(l)
		}
		m.samplers[i] = skipgram.NewNegSampler(freq)
		if m.Cfg.SimpleWalk {
			m.walkers[i] = walk.Simple{}
		} else {
			m.walkers[i] = walk.NewCorrelated(v)
		}
	}
}

// initPairs builds view-pairs, paired-subviews, their walkers, and the
// two translators per pair.
func (m *Model) initPairs() {
	m.pairs = m.Graph.ViewPairs()
	m.subviews = make([][2]*graph.View, len(m.pairs))
	m.subWalkers = make([][2]walk.Walker, len(m.pairs))
	m.trans = make([][2]*Translator, len(m.pairs))
	for p, pr := range m.pairs {
		si := graph.PairedSubview(m.views[pr.I], pr.Common)
		sj := graph.PairedSubview(m.views[pr.J], pr.Common)
		m.subviews[p] = [2]*graph.View{si, sj}
		m.subWalkers[p] = [2]walk.Walker{walk.NewCorrelated(si), walk.NewCorrelated(sj)}
		m.trans[p] = [2]*Translator{
			NewTranslator(m.Cfg.Encoders, m.Cfg.CrossPathLen, m.Cfg.SimpleTranslator, m.Cfg.LRCross, m.rng),
			NewTranslator(m.Cfg.Encoders, m.Cfg.CrossPathLen, m.Cfg.SimpleTranslator, m.Cfg.LRCross, m.rng),
		}
	}
}

// singleViewStep runs one skip-gram pass over fresh walks from view vi
// (Algorithm 1 lines 3–7) using rng, and returns the mean pair loss.
func (m *Model) singleViewStep(vi int, lr float64, rng *rand.Rand) float64 {
	v := m.views[vi]
	cfg := walk.CorpusConfig{
		WalkLength:      m.Cfg.WalkLength,
		MinWalksPerNode: m.Cfg.MinWalksPerNode,
		MaxWalksPerNode: m.Cfg.MaxWalksPerNode,
	}
	var paths [][]int
	if m.Cfg.SimpleWalk {
		// Ablation: uniformly random starting nodes, weights ignored.
		total := 0
		for l := 0; l < v.NumNodes(); l++ {
			total += cfg.WalksFor(v.Degree(l))
		}
		for i := 0; i < total; i++ {
			p := m.walkers[vi].Walk(v, rng.Intn(v.NumNodes()), cfg.WalkLength, rng)
			if len(p) >= 2 {
				paths = append(paths, p)
			}
		}
	} else {
		paths = walk.Corpus(v, m.walkers[vi], cfg, rng)
	}
	offsets := skipgram.ContextOffsets(v.Hetero)
	return m.emb[vi].TrainCorpus(paths, offsets, m.Cfg.NegativeSamples, lr, m.samplers[vi], rng)
}

// Embeddings returns the final node embeddings: one row per global node,
// each the average of the node's view-specific embeddings (Section
// III-C). Nodes absent from every view get a zero row.
func (m *Model) Embeddings() *mat.Dense {
	out := mat.New(m.Graph.NumNodes(), m.Cfg.Dim)
	counts := make([]int, m.Graph.NumNodes())
	for vi, v := range m.views {
		if m.emb[vi] == nil {
			continue
		}
		for l := 0; l < v.NumNodes(); l++ {
			gid := v.Global(l)
			row := out.Row(int(gid))
			src := m.emb[vi].In.Row(l)
			for d := range row {
				row[d] += src[d]
			}
			counts[gid]++
		}
	}
	for i, c := range counts {
		if c > 1 {
			row := out.Row(i)
			inv := 1 / float64(c)
			for d := range row {
				row[d] *= inv
			}
		}
	}
	return out
}

// ViewEmbedding exposes view vi's view-specific embedding of global node
// id, or nil when the node is not in the view. Used by tests and by the
// cross-view inspection tooling.
func (m *Model) ViewEmbedding(vi int, id graph.NodeID) []float64 {
	v := m.views[vi]
	l := v.Local(id)
	if l < 0 || m.emb[vi] == nil {
		return nil
	}
	return m.emb[vi].In.Row(l)
}

// Views returns the model's views (one per edge type).
func (m *Model) Views() []*graph.View { return m.views }

// ViewPairs returns the view-pairs the cross-view algorithm trained on
// (empty under the NoCrossView ablation).
func (m *Model) ViewPairs() []graph.ViewPair { return m.pairs }

// Translators returns the translator pair {T_i→j, T_j→i} for pair index
// p, or nil under the NoCrossView ablation.
func (m *Model) Translators(p int) [2]*Translator {
	if m.trans == nil {
		return [2]*Translator{}
	}
	return m.trans[p]
}
