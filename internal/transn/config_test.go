package transn

import "testing"

func TestDefaultConfigValid(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	if err := PaperConfig().Validate(); err != nil {
		t.Fatalf("paper config invalid: %v", err)
	}
}

func TestPaperConfigMatchesSectionIVA3(t *testing.T) {
	c := PaperConfig()
	if c.Dim != 128 {
		t.Fatalf("paper d = %d want 128", c.Dim)
	}
	if c.WalkLength != 80 {
		t.Fatalf("paper ρ = %d want 80", c.WalkLength)
	}
	if c.Encoders != 6 {
		t.Fatalf("paper H = %d want 6", c.Encoders)
	}
	if c.MinWalksPerNode != 10 || c.MaxWalksPerNode != 32 {
		t.Fatalf("paper walk counts %d/%d want 10/32", c.MinWalksPerNode, c.MaxWalksPerNode)
	}
	if c.LRSingle != 0.025 {
		t.Fatalf("paper initial rate %v want 0.025", c.LRSingle)
	}
}

func TestWithDefaultsFillsZeroes(t *testing.T) {
	var c Config
	c = c.withDefaults()
	if err := c.Validate(); err != nil {
		t.Fatalf("zero config after defaults invalid: %v", err)
	}
	// Non-zero values survive.
	c2 := Config{Dim: 7}.withDefaults()
	if c2.Dim != 7 {
		t.Fatal("withDefaults overwrote a set field")
	}
}

func TestValidateRejectsBadCrossPathLen(t *testing.T) {
	c := DefaultConfig()
	c.CrossPathLen = 1
	if err := c.Validate(); err == nil {
		t.Fatal("expected rejection of CrossPathLen 1")
	}
	c = DefaultConfig()
	c.WalkLength = 1
	if err := c.Validate(); err == nil {
		t.Fatal("expected rejection of WalkLength 1")
	}
	c = DefaultConfig()
	c.Encoders = 0
	c.Dim = 8 // keep other fields valid
	if err := c.Validate(); err == nil {
		t.Fatal("expected rejection of zero encoders")
	}
}

func TestValidateRejectsNegativeWorkers(t *testing.T) {
	c := DefaultConfig()
	c.Workers = -1
	if err := c.Validate(); err == nil {
		t.Fatal("expected rejection of Workers -1")
	}
}
