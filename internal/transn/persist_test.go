package transn

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"transn/internal/mat"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	g := socialGraph(t, 10, 5, 21)
	m, err := Train(g, quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := Load(&buf, g)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Embeddings().Equal(m2.Embeddings(), 0) {
		t.Fatal("loaded embeddings differ from saved")
	}
	// View embeddings survive.
	id := m.Views()[0].Global(0)
	a := m.ViewEmbedding(0, id)
	b := m2.ViewEmbedding(0, id)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("view embedding mismatch after load")
		}
	}
	// Translators survive: same forward output on an arbitrary segment.
	if len(m.ViewPairs()) > 0 {
		tr1 := m.Translators(0)[0]
		tr2 := m2.Translators(0)[0]
		if tr1 == nil || tr2 == nil {
			t.Fatal("missing translator after load")
		}
		L := tr1.PathLen()
		src := m.emb[0].In
		seg := mat.New(L, src.C)
		for k := 0; k < L; k++ {
			seg.SetRow(k, src.Row(k%src.R))
		}
		if !tr1.Translate(seg).Equal(tr2.Translate(seg), 0) {
			t.Fatal("translator outputs differ after load")
		}
	}
}

func TestLoadRejectsWrongGraph(t *testing.T) {
	g := socialGraph(t, 10, 5, 22)
	m, err := Train(g, quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	other := socialGraph(t, 14, 5, 23) // different node count
	if _, err := Load(&buf, other); err == nil {
		t.Fatal("expected rejection of mismatched graph")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	g := socialGraph(t, 6, 3, 24)
	if _, err := Load(strings.NewReader("not a gob"), g); err == nil {
		t.Fatal("expected decode error")
	}
}

// persistedConfig must mirror every Config field except the runtime
// telemetry handles (Observer, Telemetry), which gob cannot encode. A
// hyperparameter added to Config without a matching persistedConfig
// field would silently vanish from saved models — this test turns that
// into a failure.
func TestPersistConfigRoundTrip(t *testing.T) {
	skip := map[string]bool{"Observer": true, "Telemetry": true, "ModelReady": true}
	ct := reflect.TypeOf(Config{})
	pt := reflect.TypeOf(persistedConfig{})
	for i := 0; i < ct.NumField(); i++ {
		f := ct.Field(i)
		if skip[f.Name] {
			continue
		}
		pf, ok := pt.FieldByName(f.Name)
		if !ok {
			t.Errorf("Config field %s missing from persistedConfig", f.Name)
			continue
		}
		if pf.Type != f.Type {
			t.Errorf("Config field %s has type %v in persistedConfig, want %v", f.Name, pf.Type, f.Type)
		}
	}
	if pt.NumField() != ct.NumField()-len(skip) {
		t.Errorf("persistedConfig has %d fields, Config has %d serializable", pt.NumField(), ct.NumField()-len(skip))
	}

	// Round trip preserves every serializable field (non-zero values).
	cfg := Config{
		Dim: 1, WalkLength: 2, MinWalksPerNode: 3, MaxWalksPerNode: 4,
		Iterations: 5, NegativeSamples: 6, LRSingle: 7, LRCross: 8,
		Encoders: 9, CrossPathLen: 10, CrossPathsPerPair: 11,
		Loss: LossInnerProduct, Seed: 12, Workers: 13,
		DeterministicApply: true, Parallel: true, NoCrossView: true,
		SimpleWalk: true, SimpleTranslator: true, NoTranslation: true,
		NoReconstruction: true,
	}
	got := toPersistedConfig(cfg).config()
	cfg.Observer, cfg.Telemetry = nil, nil
	if !reflect.DeepEqual(got, cfg) {
		t.Fatalf("config round trip changed values:\n got %+v\nwant %+v", got, cfg)
	}
}
