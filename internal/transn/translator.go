package transn

import (
	"math"
	"math/rand"

	"transn/internal/autodiff"
	"transn/internal/mat"
)

// Translator projects the node-embedding matrix of a sampled path from
// one view's embedding space into another's (Section III-B2). It is a
// stack of H encoders, each a self-attention layer (Eq. 8) followed by a
// feed-forward layer (Eq. 9):
//
//	S(A) = softmax(A·Aᵀ/√d)·A
//	F(A) = relu(W·A + b)   with W ∈ R^{L×L}, b ∈ R^{L×1}
//
// where L is the fixed path length. Each sublayer is wrapped in a
// residual connection (x ← x + sublayer(x)), following the transformer
// encoder the paper cites [Vaswani et al., 2017]. Without residuals the
// plain relu stack collapses: the all-zero output is a local optimum of
// the translation objective against zero-mean embedding targets, and a
// dead relu stack receives no gradient to escape it. See DESIGN.md §2.
//
// The simple variant (ablation TransN-With-Simple-Translator) is a
// single feed-forward layer, still with its residual.
type Translator struct {
	Ws, Bs []*mat.Dense // one per encoder; len 1 when Simple
	Simple bool

	optW, optB []*autodiff.Adam
	// lastW/lastB hold the Param tensors of every Apply since the last
	// Step; Step sums duplicate applications' gradients (the translator
	// appears twice in each reconstruction graph, cf. Figure 5).
	lastW, lastB []*autodiff.Tensor
}

// NewTranslator constructs a translator for paths of length pathLen with
// the given number of encoders, or a single feed-forward layer when
// simple is set.
func NewTranslator(encoders, pathLen int, simple bool, lr float64, rng *rand.Rand) *Translator {
	n := encoders
	if simple {
		n = 1
	}
	t := &Translator{Simple: simple}
	for i := 0; i < n; i++ {
		t.Ws = append(t.Ws, mat.XavierInit(pathLen, pathLen, rng))
		t.Bs = append(t.Bs, mat.New(pathLen, 1))
		t.optW = append(t.optW, autodiff.NewAdam(lr))
		t.optB = append(t.optB, autodiff.NewAdam(lr))
	}
	return t
}

// PathLen returns the fixed path length the translator was built for.
func (t *Translator) PathLen() int { return t.Ws[0].R }

// forward builds the encoder stack's computation on tp from the lifted
// input x. lift raises each parameter matrix onto the tape — tp.Param
// for training (gradients tracked), tp.Constant for pure inference —
// and record, when non-nil, receives every lifted (W, b) pair so Step
// can read their gradients after Backward.
func (t *Translator) forward(tp *autodiff.Tape, x *autodiff.Tensor, lift func(*mat.Dense) *autodiff.Tensor, record func(w, b *autodiff.Tensor)) *autodiff.Tensor {
	d := float64(x.Value.C)
	out := x
	for i := range t.Ws {
		w := lift(t.Ws[i])
		b := lift(t.Bs[i])
		if !t.Simple {
			// Residual self-attention sublayer with post-norm.
			att := tp.SoftmaxRows(tp.Scale(1/math.Sqrt(d), tp.MatMulT(out, out)))
			out = tp.LayerNormRows(tp.Add(out, tp.MatMul(att, out)))
		}
		// Residual feed-forward sublayer with post-norm.
		out = tp.LayerNormRows(tp.Add(out, tp.Relu(tp.AddColBroadcast(tp.MatMul(w, out), b))))
		if record != nil {
			record(w, b)
		}
	}
	return out
}

// Apply records the translator's forward computation on the tape and
// returns the translated matrix tensor. x must be PathLen×d. Apply
// mutates the translator's gradient-tracking scratch and belongs to the
// training path: it must not be called concurrently with itself or with
// Step/DiscardGrads. Inference paths use Translate instead.
func (t *Translator) Apply(tp *autodiff.Tape, x *autodiff.Tensor) *autodiff.Tensor {
	return t.forward(tp, x, tp.Param, func(w, b *autodiff.Tensor) {
		// Track the freshly lifted parameter tensors so Step can read
		// their gradients after Backward.
		t.lastW = append(t.lastW, w)
		t.lastB = append(t.lastB, b)
	})
}

// Step applies one Adam update using the gradients accumulated by
// Backward through every Apply since the previous Step.
func (t *Translator) Step() {
	for k, w := range t.lastW {
		i := k % len(t.Ws)
		// Accumulate duplicate applications into the first occurrence.
		if k >= len(t.Ws) {
			mat.AddScaled(t.lastW[i].Grad, 1, w.Grad)
			mat.AddScaled(t.lastB[i].Grad, 1, t.lastB[k].Grad)
		}
	}
	for i := range t.Ws {
		t.optW[i].Step(t.Ws[i], t.lastW[i].Grad)
		t.optB[i].Step(t.Bs[i], t.lastB[i].Grad)
	}
	t.lastW = t.lastW[:0]
	t.lastB = t.lastB[:0]
}

// DiscardGrads clears pending Apply records without updating parameters.
func (t *Translator) DiscardGrads() {
	t.lastW = t.lastW[:0]
	t.lastB = t.lastB[:0]
}

// Translate runs the forward pass outside any training loop, for
// inference, diagnostics and tests. Unlike Apply it is safe for
// concurrent callers: parameters are lifted onto a private tape as
// constants and nothing is recorded into the translator's
// gradient-tracking scratch, so concurrent calls share only the
// read-only weight tables. (It previously routed through Apply, whose
// lastW/lastB appends are training-path scratch — two concurrent
// Translate calls raced on those slices.)
func (t *Translator) Translate(x *mat.Dense) *mat.Dense {
	tp := autodiff.NewTape()
	return t.forward(tp, tp.Constant(x), tp.Constant, nil).Value.Clone()
}
