package transn

import (
	"math"
	"math/rand"
	"testing"

	"transn/internal/autodiff"
	"transn/internal/mat"
)

func TestTranslatorShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tr := NewTranslator(3, 8, false, 0.01, rng)
	if len(tr.Ws) != 3 || len(tr.Bs) != 3 {
		t.Fatalf("encoder count %d/%d want 3", len(tr.Ws), len(tr.Bs))
	}
	if tr.PathLen() != 8 {
		t.Fatalf("PathLen = %d", tr.PathLen())
	}
	x := mat.RandN(8, 16, 0.1, rng)
	out := tr.Translate(x)
	if out.R != 8 || out.C != 16 {
		t.Fatalf("Translate output %dx%d want 8x16", out.R, out.C)
	}
}

func TestSimpleTranslatorSingleLayer(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tr := NewTranslator(6, 4, true, 0.01, rng)
	if len(tr.Ws) != 1 {
		t.Fatalf("simple translator has %d layers, want 1", len(tr.Ws))
	}
	if !tr.Simple {
		t.Fatal("Simple flag not set")
	}
}

func TestTranslatorTrainsTowardTarget(t *testing.T) {
	// A translator should learn toward a fixed target matrix for a fixed
	// input: loss must at least halve over 200 Adam steps. The output is
	// layer-normalized, so the reachable targets are row-normalized. (W
	// being shared across all embedding columns bounds how exact the fit
	// can get.)
	rng := rand.New(rand.NewSource(3))
	tr := NewTranslator(2, 6, false, 0.02, rng)
	x := mat.RandN(6, 8, 0.3, rng)
	target := normalizeRows(mat.RandN(6, 8, 0.3, rng))
	lossAt := func() float64 {
		tp := autodiff.NewTape()
		out := tr.Apply(tp, tp.Constant(x))
		loss := tp.MSE(out, tp.Constant(target))
		tp.Backward(loss)
		tr.Step()
		return loss.Value.At(0, 0)
	}
	first := lossAt()
	var last float64
	for i := 0; i < 200; i++ {
		last = lossAt()
	}
	if last > first/2 {
		t.Fatalf("translator did not learn: first %.6f last %.6f", first, last)
	}
}

func TestTranslatorDualApplicationGradients(t *testing.T) {
	// Applying the same translator twice in one graph (reconstruction
	// pattern) must accumulate both applications' gradients. We verify by
	// checking Step changes the parameters and subsequent records clear.
	rng := rand.New(rand.NewSource(4))
	fwd := NewTranslator(1, 4, false, 0.05, rng)
	bwd := NewTranslator(1, 4, false, 0.05, rng)
	x := mat.RandN(4, 5, 0.3, rng)
	before := fwd.Ws[0].Clone()

	tp := autodiff.NewTape()
	tx := tp.Constant(x)
	mid := fwd.Apply(tp, tx)
	rec := bwd.Apply(tp, mid)
	loss := tp.MSE(rec, tx)
	tp.Backward(loss)
	fwd.Step()
	bwd.Step()

	if fwd.Ws[0].Equal(before, 0) {
		t.Fatal("forward translator parameters unchanged after Step")
	}
	if len(fwd.lastW) != 0 || len(bwd.lastW) != 0 {
		t.Fatal("Step must clear pending records")
	}
}

func TestTranslatorReconstructionIdentityTrainable(t *testing.T) {
	// Dual training: fwd∘bwd should approach the (normalized) identity
	// on a fixed input.
	rng := rand.New(rand.NewSource(5))
	fwd := NewTranslator(1, 5, false, 0.02, rng)
	bwd := NewTranslator(1, 5, false, 0.02, rng)
	x := mat.RandN(5, 6, 0.3, rng)
	xn := normalizeRows(x.Clone())
	var first, last float64
	for i := 0; i < 300; i++ {
		tp := autodiff.NewTape()
		tx := tp.Constant(x)
		rec := bwd.Apply(tp, fwd.Apply(tp, tx))
		loss := tp.MSE(rec, tp.Constant(xn))
		tp.Backward(loss)
		fwd.Step()
		bwd.Step()
		if i == 0 {
			first = loss.Value.At(0, 0)
		}
		last = loss.Value.At(0, 0)
	}
	if last > first/5 {
		t.Fatalf("reconstruction loss did not shrink: %.6f → %.6f", first, last)
	}
}

func TestDiscardGrads(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	tr := NewTranslator(2, 4, false, 0.01, rng)
	tp := autodiff.NewTape()
	tr.Apply(tp, tp.Constant(mat.RandN(4, 3, 0.1, rng)))
	if len(tr.lastW) != 2 {
		t.Fatalf("pending records = %d want 2", len(tr.lastW))
	}
	tr.DiscardGrads()
	if len(tr.lastW) != 0 {
		t.Fatal("DiscardGrads left records")
	}
}

func TestTranslatorOutputRowsNormalized(t *testing.T) {
	// The post-norm residual encoders emit layer-normalized rows: zero
	// mean, unit variance. This is the invariant that prevents both the
	// dead-relu collapse and the residual explosion (see the Translator
	// doc comment).
	rng := rand.New(rand.NewSource(7))
	tr := NewTranslator(2, 4, false, 0.01, rng)
	x := mat.RandN(4, 6, 0.5, rng)
	out := tr.Translate(x)
	for i := 0; i < out.R; i++ {
		var mean, varr float64
		for _, v := range out.Row(i) {
			mean += v
		}
		mean /= float64(out.C)
		for _, v := range out.Row(i) {
			varr += (v - mean) * (v - mean)
		}
		varr /= float64(out.C)
		if math.Abs(mean) > 1e-9 || math.Abs(varr-1) > 1e-3 {
			t.Fatalf("row %d mean %v var %v", i, mean, varr)
		}
	}
}

func TestTranslatorGradientsReachInput(t *testing.T) {
	// Regression test for the dead-relu collapse: gradients must flow
	// back to the input matrix even for a translator whose relu units
	// are mostly inactive, thanks to the residual paths.
	rng := rand.New(rand.NewSource(8))
	tr := NewTranslator(2, 5, false, 0.01, rng)
	x := mat.RandN(5, 7, 0.5, rng)
	target := mat.RandN(5, 7, 0.5, rng)
	tp := autodiff.NewTape()
	tx := tp.Param(x)
	out := tr.Apply(tp, tx)
	loss := tp.MSE(out, tp.Constant(target))
	tp.Backward(loss)
	tr.DiscardGrads()
	if tx.Grad.FrobeniusNorm() == 0 {
		t.Fatal("input gradient vanished through translator")
	}
}
