package transn

import (
	"encoding/gob"
	"fmt"
	"io"

	"transn/internal/graph"
	"transn/internal/mat"
)

// persistedConfig mirrors the serializable fields of Config. Config
// itself carries runtime-only telemetry handles (Observer, Telemetry —
// see internal/obs) that gob cannot encode, so the wire format pins
// the hyperparameter subset explicitly. Field names match Config, and
// gob resolves struct fields by name, so models saved before the split
// decode unchanged. New Config hyperparameters must be added here too;
// TestPersistConfigRoundTrip enforces that.
type persistedConfig struct {
	Dim                int
	WalkLength         int
	MinWalksPerNode    int
	MaxWalksPerNode    int
	Iterations         int
	NegativeSamples    int
	LRSingle           float64
	LRCross            float64
	Encoders           int
	CrossPathLen       int
	CrossPathsPerPair  int
	Loss               CrossLoss
	Seed               int64
	Workers            int
	DeterministicApply bool
	Parallel           bool
	NoCrossView        bool
	SimpleWalk         bool
	SimpleTranslator   bool
	NoTranslation      bool
	NoReconstruction   bool
}

func toPersistedConfig(c Config) persistedConfig {
	return persistedConfig{
		Dim:                c.Dim,
		WalkLength:         c.WalkLength,
		MinWalksPerNode:    c.MinWalksPerNode,
		MaxWalksPerNode:    c.MaxWalksPerNode,
		Iterations:         c.Iterations,
		NegativeSamples:    c.NegativeSamples,
		LRSingle:           c.LRSingle,
		LRCross:            c.LRCross,
		Encoders:           c.Encoders,
		CrossPathLen:       c.CrossPathLen,
		CrossPathsPerPair:  c.CrossPathsPerPair,
		Loss:               c.Loss,
		Seed:               c.Seed,
		Workers:            c.Workers,
		DeterministicApply: c.DeterministicApply,
		Parallel:           c.Parallel,
		NoCrossView:        c.NoCrossView,
		SimpleWalk:         c.SimpleWalk,
		SimpleTranslator:   c.SimpleTranslator,
		NoTranslation:      c.NoTranslation,
		NoReconstruction:   c.NoReconstruction,
	}
}

func (p persistedConfig) config() Config {
	return Config{
		Dim:                p.Dim,
		WalkLength:         p.WalkLength,
		MinWalksPerNode:    p.MinWalksPerNode,
		MaxWalksPerNode:    p.MaxWalksPerNode,
		Iterations:         p.Iterations,
		NegativeSamples:    p.NegativeSamples,
		LRSingle:           p.LRSingle,
		LRCross:            p.LRCross,
		Encoders:           p.Encoders,
		CrossPathLen:       p.CrossPathLen,
		CrossPathsPerPair:  p.CrossPathsPerPair,
		Loss:               p.Loss,
		Seed:               p.Seed,
		Workers:            p.Workers,
		DeterministicApply: p.DeterministicApply,
		Parallel:           p.Parallel,
		NoCrossView:        p.NoCrossView,
		SimpleWalk:         p.SimpleWalk,
		SimpleTranslator:   p.SimpleTranslator,
		NoTranslation:      p.NoTranslation,
		NoReconstruction:   p.NoReconstruction,
	}
}

// persistedModel is the gob wire format of a trained model. It stores
// the configuration, per-view embedding tables and translator weights;
// the graph itself is not stored — Load re-derives views from the graph
// the caller supplies, which must be identical to the training graph.
type persistedModel struct {
	Version int
	Cfg     persistedConfig
	// Per view: nil entries mark empty views.
	EmbIn  []*matBlob
	EmbOut []*matBlob
	// Per pair, two translators, each a W/B list.
	TransW [][2][]*matBlob
	TransB [][2][]*matBlob
	Simple bool
}

// matBlob is a gob-friendly matrix.
type matBlob struct {
	R, C int
	Data []float64
}

func toBlob(m *mat.Dense) *matBlob {
	if m == nil {
		return nil
	}
	return &matBlob{R: m.R, C: m.C, Data: append([]float64(nil), m.Data...)}
}

func fromBlob(b *matBlob) *mat.Dense {
	if b == nil {
		return nil
	}
	return mat.FromSlice(b.R, b.C, append([]float64(nil), b.Data...))
}

// Save serializes the trained model to w. The graph is not included;
// pass the same graph to Load.
func (m *Model) Save(w io.Writer) error {
	pm := persistedModel{Version: 1, Cfg: toPersistedConfig(m.Cfg)}
	for _, e := range m.emb {
		if e == nil {
			pm.EmbIn = append(pm.EmbIn, nil)
			pm.EmbOut = append(pm.EmbOut, nil)
			continue
		}
		pm.EmbIn = append(pm.EmbIn, toBlob(e.In))
		pm.EmbOut = append(pm.EmbOut, toBlob(e.Out))
	}
	for _, pair := range m.trans {
		var w2, b2 [2][]*matBlob
		for side := 0; side < 2; side++ {
			if pair[side] == nil {
				continue
			}
			for _, wm := range pair[side].Ws {
				w2[side] = append(w2[side], toBlob(wm))
			}
			for _, bm := range pair[side].Bs {
				b2[side] = append(b2[side], toBlob(bm))
			}
			pm.Simple = pair[side].Simple
		}
		pm.TransW = append(pm.TransW, w2)
		pm.TransB = append(pm.TransB, b2)
	}
	return gob.NewEncoder(w).Encode(&pm)
}

// Load reconstructs a model saved with Save. g must be the graph the
// model was trained on (same nodes, edges and types); view shapes are
// validated against the stored tables (via FromExport, the validation
// path shared with the binary snapshot format).
func Load(r io.Reader, g *graph.Graph) (*Model, error) {
	var pm persistedModel
	if err := gob.NewDecoder(r).Decode(&pm); err != nil {
		return nil, fmt.Errorf("transn: decoding model: %w", err)
	}
	if pm.Version != 1 {
		return nil, fmt.Errorf("transn: unsupported model version %d", pm.Version)
	}
	e := Export{Cfg: pm.Cfg.config(), TranslatorSimple: pm.Simple}
	for vi := range pm.EmbIn {
		e.EmbIn = append(e.EmbIn, fromBlob(pm.EmbIn[vi]))
		e.EmbOut = append(e.EmbOut, fromBlob(pm.EmbOut[vi]))
	}
	for p := range pm.TransW {
		var w2, b2 [2][]*mat.Dense
		for side := 0; side < 2; side++ {
			for _, wb := range pm.TransW[p][side] {
				w2[side] = append(w2[side], fromBlob(wb))
			}
			for _, bb := range pm.TransB[p][side] {
				b2[side] = append(b2[side], fromBlob(bb))
			}
		}
		e.TransW = append(e.TransW, w2)
		e.TransB = append(e.TransB, b2)
	}
	return FromExport(e, g)
}
