package transn

import (
	"math"
	"math/rand"
	"testing"

	"transn/internal/graph"
	"transn/internal/mat"
	"transn/internal/walk"
)

// socialGraph builds a two-view network with planted communities: users
// split into two groups with dense intra-group friendships (UU, homo) and
// group-specific keyword usage (UK, heter). Cross-view information flows
// through the shared user nodes.
func socialGraph(t testing.TB, usersPerGroup, keywordsPerGroup int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder()
	user := b.NodeType("user")
	keyword := b.NodeType("keyword")
	uu := b.EdgeType("UU")
	uk := b.EdgeType("UK")

	var users [2][]graph.NodeID
	var kws [2][]graph.NodeID
	for g := 0; g < 2; g++ {
		for i := 0; i < usersPerGroup; i++ {
			id := b.AddNode(user, "")
			b.SetLabel(id, g)
			users[g] = append(users[g], id)
		}
		for i := 0; i < keywordsPerGroup; i++ {
			kws[g] = append(kws[g], b.AddNode(keyword, ""))
		}
	}
	seen := map[[2]graph.NodeID]bool{}
	addOnce := func(u, v graph.NodeID, et graph.EdgeType, w float64) {
		if u > v {
			u, v = v, u
		}
		k := [2]graph.NodeID{u, v}
		if u == v || seen[k] {
			return
		}
		seen[k] = true
		b.AddEdge(u, v, et, w)
	}
	for g := 0; g < 2; g++ {
		// Intra-group friendships: ring + random chords.
		n := len(users[g])
		for i := 0; i < n; i++ {
			addOnce(users[g][i], users[g][(i+1)%n], uu, 1)
			addOnce(users[g][i], users[g][rng.Intn(n)], uu, 1)
		}
		// Keyword usage: each user posts 3 group keywords, weighted.
		for _, u := range users[g] {
			for j := 0; j < 3; j++ {
				kw := kws[g][rng.Intn(len(kws[g]))]
				addOnce(u, kw, uk, 1+4*rng.Float64())
			}
		}
	}
	// Sparse cross-group noise.
	for i := 0; i < usersPerGroup/4+1; i++ {
		addOnce(users[0][rng.Intn(usersPerGroup)], users[1][rng.Intn(usersPerGroup)], uu, 1)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func quickCfg() Config {
	c := DefaultConfig()
	c.Dim = 16
	c.WalkLength = 12
	c.MinWalksPerNode = 3
	c.MaxWalksPerNode = 6
	c.Iterations = 3
	c.CrossPathLen = 4
	c.CrossPathsPerPair = 30
	// Serial by default so assertions about exact reproducibility hold on
	// any machine; concurrency-specific behaviour is covered by
	// determinism_test.go and stress_test.go.
	c.Workers = 1
	return c
}

func TestTrainProducesEmbeddingsForAllNodes(t *testing.T) {
	g := socialGraph(t, 12, 6, 1)
	m, err := Train(g, quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	emb := m.Embeddings()
	if emb.R != g.NumNodes() || emb.C != 16 {
		t.Fatalf("embeddings %dx%d want %dx16", emb.R, emb.C, g.NumNodes())
	}
	zeroRows := 0
	for i := 0; i < emb.R; i++ {
		if mat.Norm2(emb.Row(i)) == 0 {
			zeroRows++
		}
	}
	if zeroRows > 0 {
		t.Fatalf("%d nodes got zero embeddings", zeroRows)
	}
	for _, v := range emb.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("non-finite embedding value")
		}
	}
}

func TestTrainDeterministicWithSeed(t *testing.T) {
	g := socialGraph(t, 8, 4, 2)
	cfg := quickCfg()
	cfg.Seed = 99
	m1, err := Train(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Train(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !m1.Embeddings().Equal(m2.Embeddings(), 0) {
		t.Fatal("same seed must give identical embeddings")
	}
	cfg.Seed = 100
	m3, err := Train(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m1.Embeddings().Equal(m3.Embeddings(), 1e-12) {
		t.Fatal("different seeds should give different embeddings")
	}
}

func TestCommunityStructureCaptured(t *testing.T) {
	g := socialGraph(t, 15, 8, 3)
	cfg := quickCfg()
	cfg.Iterations = 5
	m, err := Train(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	emb := m.Embeddings()
	// Mean intra-group vs inter-group cosine similarity over users.
	var g0, g1 []int
	for _, id := range g.LabeledNodes() {
		if g.Label(id) == 0 {
			g0 = append(g0, int(id))
		} else {
			g1 = append(g1, int(id))
		}
	}
	intra := meanPairSim(emb, g0, g0) + meanPairSim(emb, g1, g1)
	inter := 2 * meanPairSim(emb, g0, g1)
	if intra <= inter {
		t.Fatalf("intra-group similarity %.4f should exceed inter-group %.4f", intra/2, inter/2)
	}
}

func meanPairSim(emb *mat.Dense, a, b []int) float64 {
	var s float64
	var n int
	for _, i := range a {
		for _, j := range b {
			if i == j {
				continue
			}
			s += mat.CosineSim(emb.Row(i), emb.Row(j))
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return s / float64(n)
}

func TestSingleViewLossDecreases(t *testing.T) {
	g := socialGraph(t, 12, 6, 4)
	cfg := quickCfg()
	cfg.Iterations = 6
	m, err := Train(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.History) != 6 {
		t.Fatalf("history length %d", len(m.History))
	}
	first := m.History[0].SingleLoss
	last := m.History[len(m.History)-1].SingleLoss
	if !(last < first) {
		t.Fatalf("single-view loss %.4f → %.4f did not decrease", first, last)
	}
}

func TestAblationVariantsTrain(t *testing.T) {
	g := socialGraph(t, 8, 4, 5)
	base := quickCfg()
	variants := map[string]func(*Config){
		"NoCrossView":      func(c *Config) { c.NoCrossView = true },
		"SimpleWalk":       func(c *Config) { c.SimpleWalk = true },
		"SimpleTranslator": func(c *Config) { c.SimpleTranslator = true },
		"NoTranslation":    func(c *Config) { c.NoTranslation = true },
		"NoReconstruction": func(c *Config) { c.NoReconstruction = true },
	}
	for name, mutate := range variants {
		cfg := base
		mutate(&cfg)
		m, err := Train(g, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		emb := m.Embeddings()
		for _, v := range emb.Data {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("%s: non-finite embedding", name)
			}
		}
	}
}

func TestNoCrossViewSkipsPairs(t *testing.T) {
	g := socialGraph(t, 8, 4, 6)
	cfg := quickCfg()
	cfg.NoCrossView = true
	m, err := Train(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.ViewPairs()) != 0 {
		t.Fatal("NoCrossView should not build view pairs")
	}
	for _, st := range m.History {
		if st.CrossLoss != 0 {
			t.Fatal("NoCrossView recorded cross loss")
		}
	}
}

func TestSimpleWalkUsesSimpleWalker(t *testing.T) {
	g := socialGraph(t, 8, 4, 7)
	cfg := quickCfg()
	cfg.SimpleWalk = true
	m, err := Train(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m.walkerFor(0).(walk.Simple); !ok {
		t.Fatalf("SimpleWalk walker type %T", m.walkerFor(0))
	}
}

func TestConfigValidation(t *testing.T) {
	g := socialGraph(t, 6, 3, 8)
	bad := quickCfg()
	bad.NoTranslation = true
	bad.NoReconstruction = true
	if _, err := Train(g, bad); err == nil {
		t.Fatal("expected rejection of both-tasks-disabled config")
	}
	bad2 := quickCfg()
	bad2.MinWalksPerNode = 10
	bad2.MaxWalksPerNode = 2
	if _, err := Train(g, bad2); err == nil {
		t.Fatal("expected rejection of Min > Max")
	}
	bad3 := quickCfg()
	bad3.Dim = -1
	if _, err := Train(g, bad3); err == nil {
		t.Fatal("expected rejection of negative Dim")
	}
}

func TestInnerProductLossMode(t *testing.T) {
	g := socialGraph(t, 8, 4, 9)
	cfg := quickCfg()
	cfg.Loss = LossInnerProduct
	cfg.Iterations = 2
	m, err := Train(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	emb := m.Embeddings()
	for _, v := range emb.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("inner-product mode produced non-finite embedding")
		}
	}
}

func TestViewEmbeddingAccessor(t *testing.T) {
	g := socialGraph(t, 8, 4, 10)
	m, err := Train(g, quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	views := m.Views()
	// Any node of view 0 has an embedding there.
	id := views[0].Global(0)
	if e := m.ViewEmbedding(0, id); len(e) != 16 {
		t.Fatalf("view embedding length %d", len(e))
	}
	// A keyword node is absent from the UU view.
	var kw graph.NodeID = -1
	for _, n := range g.Nodes {
		if g.NodeTypeNames[n.Type] == "keyword" {
			kw = n.ID
			break
		}
	}
	if kw == -1 {
		t.Fatal("no keyword node found")
	}
	if e := m.ViewEmbedding(0, kw); e != nil {
		t.Fatal("keyword should have no UU-view embedding")
	}
}

func TestCrossViewPullsViewsTogether(t *testing.T) {
	// The defining property of the cross-view algorithm: translating a
	// common node's embedding from view i should land near its view-j
	// embedding — closer than chance. We compare against the NoCrossView
	// ablation trained with the same seed.
	g := socialGraph(t, 12, 6, 11)
	cfg := quickCfg()
	cfg.Iterations = 5
	m, err := Train(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.ViewPairs()) == 0 {
		t.Fatal("no view pairs in test graph")
	}
	pr := m.ViewPairs()[0]
	tr := m.Translators(0)
	if tr[0] == nil {
		t.Fatal("missing translator")
	}
	L := m.Cfg.CrossPathLen
	if len(pr.Common) < L {
		t.Skip("not enough common nodes")
	}
	// Build a segment from the first L common nodes and translate.
	A := mat.New(L, m.Cfg.Dim)
	T := mat.New(L, m.Cfg.Dim)
	for k := 0; k < L; k++ {
		copy(A.Row(k), m.ViewEmbedding(pr.I, pr.Common[k]))
		copy(T.Row(k), m.ViewEmbedding(pr.J, pr.Common[k]))
	}
	out := tr[0].Translate(A)
	err2 := mat.Sub(nil, out, T).FrobeniusNorm()
	base := mat.Sub(nil, A, T).FrobeniusNorm()
	if math.IsNaN(err2) {
		t.Fatal("translation produced NaN")
	}
	// The trained translator should not be wildly worse than identity.
	if err2 > 3*base+1 {
		t.Fatalf("translated error %.4f vs untranslated %.4f", err2, base)
	}
}

func BenchmarkTrainSmall(b *testing.B) {
	g := socialGraph(b, 10, 5, 1)
	cfg := quickCfg()
	cfg.Iterations = 2
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Train(g, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func TestParallelTrainingDeterministic(t *testing.T) {
	// The deprecated Parallel alias must keep its documented promise:
	// concurrent training that is reproducible for a fixed seed. It now
	// maps to Workers=NumCPU with DeterministicApply=true.
	g := socialGraph(t, 10, 5, 12)
	cfg := quickCfg()
	cfg.Workers = 0 // auto: NumCPU
	cfg.Parallel = true
	m1, err := Train(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Train(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !m1.Embeddings().Equal(m2.Embeddings(), 0) {
		t.Fatal("parallel training must be deterministic for a fixed seed")
	}
	// Quality sanity: parallel training still learns communities.
	emb := m1.Embeddings()
	var g0, g1 []int
	for _, id := range g.LabeledNodes() {
		if g.Label(id) == 0 {
			g0 = append(g0, int(id))
		} else {
			g1 = append(g1, int(id))
		}
	}
	intra := meanPairSim(emb, g0, g0) + meanPairSim(emb, g1, g1)
	inter := 2 * meanPairSim(emb, g0, g1)
	if intra <= inter {
		t.Fatalf("parallel training lost community structure: intra %.4f inter %.4f", intra/2, inter/2)
	}
}

// TestCrossViewAlignsViewSpaces verifies the mechanism DESIGN.md relies
// on: after training, a common node's (direction-normalized) embeddings
// in the two views of a pair are substantially more similar than under
// the NoCrossView ablation, where the view spaces are independent.
func TestCrossViewAlignsViewSpaces(t *testing.T) {
	g := socialGraph(t, 15, 8, 31)
	cfg := quickCfg()
	cfg.Iterations = 6
	cfg.CrossPathsPerPair = 80

	alignment := func(m *Model) float64 {
		if len(m.ViewPairs()) == 0 {
			t.Fatal("no view pairs")
		}
		pr := m.ViewPairs()[0]
		var sum float64
		var n int
		for _, id := range pr.Common {
			a := m.ViewEmbedding(pr.I, id)
			b := m.ViewEmbedding(pr.J, id)
			if a == nil || b == nil {
				continue
			}
			sum += mat.CosineSim(a, b)
			n++
		}
		return sum / float64(n)
	}
	full, err := Train(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	alignedSim := alignment(full)

	// NoCrossView builds no pairs, so train a second full model with the
	// cross-view *embedding updates* neutralized via zero LR instead.
	cfg2 := cfg
	cfg2.LRCross = 1e-12
	ablated, err := Train(g, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	unalignedSim := alignment(ablated)

	if alignedSim <= unalignedSim {
		t.Fatalf("cross-view did not align view spaces: %.4f (full) vs %.4f (zero cross LR)",
			alignedSim, unalignedSim)
	}
}
