package transn

// Concurrency stress suite: drives the full Algorithm 1 pipeline with
// many more workers than this graph needs, in both update disciplines,
// so `go test -race ./internal/transn` exercises every fan-out point
// (walk shards, skip-gram shards, cross-view pair steps) under the race
// detector. The intentional Hogwild element races are scoped to
// go:norace helpers (skipgram.TrainPair, gatherRows/scatterRowGrads);
// everything else — pool, sharding, phase barriers, per-shard RNG
// streams — is instrumented, so a pass here means the pipeline has no
// unintended data races.

import (
	"math"
	"testing"
)

func stressCfg() Config {
	cfg := quickCfg()
	cfg.Workers = 8
	cfg.Iterations = 5
	return cfg
}

// checkStressInvariants asserts the guarantees that hold in every mode:
// finite loss history, loss that is non-increasing on average, and
// finite embeddings for every node.
func checkStressInvariants(t *testing.T, m *Model) {
	t.Helper()
	if len(m.History) != m.Cfg.Iterations {
		t.Fatalf("history length %d want %d", len(m.History), m.Cfg.Iterations)
	}
	for _, st := range m.History {
		if math.IsNaN(st.SingleLoss) || math.IsInf(st.SingleLoss, 0) {
			t.Fatalf("non-finite single loss at iter %d: %v", st.Iteration, st.SingleLoss)
		}
		if math.IsNaN(st.CrossLoss) || math.IsInf(st.CrossLoss, 0) {
			t.Fatalf("non-finite cross loss at iter %d: %v", st.Iteration, st.CrossLoss)
		}
	}
	// Non-increasing on average: the mean single-view loss of the second
	// half must not exceed the first half's (individual iterations may
	// wobble under Hogwild).
	half := len(m.History) / 2
	var first, second float64
	for i, st := range m.History {
		if i < half {
			first += st.SingleLoss
		} else {
			second += st.SingleLoss
		}
	}
	first /= float64(half)
	second /= float64(len(m.History) - half)
	if second > first {
		t.Fatalf("mean single loss increased: %.4f → %.4f", first, second)
	}
	emb := m.Embeddings()
	for r := 0; r < emb.R; r++ {
		for _, v := range emb.Row(r) {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("non-finite embedding row %d", r)
			}
		}
	}
}

func TestStressHogwildWorkers8(t *testing.T) {
	g := socialGraph(t, 16, 8, 41)
	m, err := Train(g, stressCfg())
	if err != nil {
		t.Fatal(err)
	}
	checkStressInvariants(t, m)
}

func TestStressDeterministicWorkers8(t *testing.T) {
	g := socialGraph(t, 16, 8, 42)
	cfg := stressCfg()
	cfg.DeterministicApply = true
	m, err := Train(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkStressInvariants(t, m)
}

// TestStressAblationsUnderPool makes sure every ablation path survives
// the pooled pipeline (the SimpleWalk corpus stays serial but its
// training pass shards; NoCrossView skips the pair fan-out entirely).
func TestStressAblationsUnderPool(t *testing.T) {
	g := socialGraph(t, 10, 5, 43)
	for name, mutate := range map[string]func(*Config){
		"NoCrossView": func(c *Config) { c.NoCrossView = true },
		"SimpleWalk":  func(c *Config) { c.SimpleWalk = true },
	} {
		cfg := stressCfg()
		cfg.Iterations = 2
		mutate(&cfg)
		m, err := Train(g, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		emb := m.Embeddings()
		for _, v := range emb.Data {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("%s: non-finite embedding", name)
			}
		}
	}
}
