package transn

// Determinism regression suite for the sharded worker-pool pipeline.
//
// The reproducibility contract (Config.Workers / DeterministicApply):
//
//   - Workers=1 is the serial path: every stage runs inline on one
//     goroutine, and the Hogwild/deterministic distinction vanishes —
//     both settings must produce byte-identical embeddings.
//   - DeterministicApply=true is byte-reproducible for any fixed
//     (Seed, Workers): walk shards still run concurrently, but their
//     outputs are combined in shard order and updates apply serially.
//   - The default Hogwild mode (DeterministicApply=false, Workers>1) is
//     INTENTIONALLY nondeterministic: shards update the shared
//     embedding tables without synchronization, so run-to-run results
//     differ at the level of individual gradient steps (exactly like
//     the original word2vec trainer). There is deliberately no test
//     asserting byte equality for that mode; TestHogwildTrainsToFinite
//     and the stress suite assert the properties that do hold (finite,
//     learning, race-clean).

import (
	"math"
	"testing"
)

// trainEmb trains and returns embeddings, failing the test on error.
func trainEmb(t *testing.T, cfg Config, seed int64) ([]float64, *Model) {
	t.Helper()
	g := socialGraph(t, 10, 5, seed)
	m, err := Train(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m.Embeddings().Data, m
}

func TestWorkersOneMatchesSerialPath(t *testing.T) {
	cfg := quickCfg()
	cfg.Workers = 1
	cfg.DeterministicApply = false // Hogwild flag is moot at one worker
	hog, _ := trainEmb(t, cfg, 21)

	cfg.DeterministicApply = true
	det, _ := trainEmb(t, cfg, 21)

	if len(hog) != len(det) {
		t.Fatalf("embedding sizes differ: %d vs %d", len(hog), len(det))
	}
	for i := range hog {
		if hog[i] != det[i] {
			t.Fatalf("Workers=1 paths diverge at element %d: %v vs %v", i, hog[i], det[i])
		}
	}
}

func TestDeterministicShardedApplyReproducible(t *testing.T) {
	for _, workers := range []int{2, 4} {
		cfg := quickCfg()
		cfg.Workers = workers
		cfg.DeterministicApply = true
		a, _ := trainEmb(t, cfg, 22)
		b, _ := trainEmb(t, cfg, 22)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("Workers=%d deterministic mode not reproducible at element %d: %v vs %v",
					workers, i, a[i], b[i])
			}
		}
	}
}

func TestDeterministicModeStillSeedSensitive(t *testing.T) {
	cfg := quickCfg()
	cfg.Workers = 2
	cfg.DeterministicApply = true
	cfg.Seed = 5
	a, _ := trainEmb(t, cfg, 23)
	cfg.Seed = 6
	b, _ := trainEmb(t, cfg, 23)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical embeddings")
	}
}

// TestHogwildTrainsToFinite pins down what the nondeterministic default
// mode does guarantee: training completes, embeddings are finite, and
// the model still learns (loss decreases). Byte-level reproducibility is
// explicitly NOT guaranteed for Workers>1 without DeterministicApply.
func TestHogwildTrainsToFinite(t *testing.T) {
	cfg := quickCfg()
	cfg.Workers = 4
	cfg.Iterations = 4
	emb, m := trainEmb(t, cfg, 24)
	for i, v := range emb {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("non-finite embedding element %d: %v", i, v)
		}
	}
	first := m.History[0].SingleLoss
	last := m.History[len(m.History)-1].SingleLoss
	if !(last < first) {
		t.Fatalf("hogwild loss did not decrease: %.4f → %.4f", first, last)
	}
}

// TestParallelAliasMapsToDeterministic verifies the deprecated flag's
// translation in withDefaults.
func TestParallelAliasMapsToDeterministic(t *testing.T) {
	c := Config{Parallel: true}.withDefaults()
	if !c.DeterministicApply {
		t.Fatal("Parallel=true must imply DeterministicApply")
	}
	if c.Workers < 1 {
		t.Fatalf("Workers defaulted to %d", c.Workers)
	}
	c2 := Config{}.withDefaults()
	if c2.DeterministicApply {
		t.Fatal("default config must be Hogwild (DeterministicApply=false)")
	}
	if c2.Workers < 1 {
		t.Fatalf("Workers defaulted to %d", c2.Workers)
	}
}

// TestViewInitStreamsIndependent regression-tests the rand.Rand sharing
// hazard fixed in this refactor: every view's embedding table must come
// from its own derived stream, so view initializations are mutually
// independent and do not depend on iteration order or worker count.
func TestViewInitStreamsIndependent(t *testing.T) {
	g := socialGraph(t, 8, 4, 25)
	cfg := quickCfg().withDefaults()
	m1 := &Model{Cfg: cfg, Graph: g, views: g.Views()}
	m1.initViews()
	m2 := &Model{Cfg: cfg, Graph: g, views: g.Views()}
	m2.initViews()
	if len(m1.emb) < 2 || m1.emb[0] == nil || m1.emb[1] == nil {
		t.Fatal("expected two non-empty views")
	}
	// Reproducible per view.
	for vi := range m1.emb {
		if m1.emb[vi] == nil {
			continue
		}
		for i, v := range m1.emb[vi].In.Data {
			if m2.emb[vi].In.Data[i] != v {
				t.Fatalf("view %d init not reproducible", vi)
			}
		}
	}
	// Streams differ between views: the (equal-size) prefixes of the two
	// tables must not coincide.
	n := len(m1.emb[0].In.Data)
	if n2 := len(m1.emb[1].In.Data); n2 < n {
		n = n2
	}
	same := 0
	for i := 0; i < n; i++ {
		if m1.emb[0].In.Data[i] == m1.emb[1].In.Data[i] {
			same++
		}
	}
	if same == n {
		t.Fatal("views 0 and 1 were initialized from the same stream")
	}
}
