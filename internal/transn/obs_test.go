package transn

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"transn/internal/obs"
)

// Telemetry suite for the instrumented trainer: registry counters merge
// to exact totals across concurrent shards, spans cover every stage of
// Algorithm 1, the JSON report carries per-view/per-pair losses, and
// the event stream is deterministic under DeterministicApply. The whole
// file runs under -race in CI (telemetry enabled on Hogwild training is
// exactly the contended case).

func telemetryCfg(workers int, deterministic bool) Config {
	cfg := quickCfg()
	cfg.Workers = workers
	cfg.DeterministicApply = deterministic
	return cfg
}

func TestTrainTelemetryReportAndCounters(t *testing.T) {
	g := socialGraph(t, 12, 6, 3)
	run := obs.NewRun()
	var events []obs.TrainEvent
	cfg := telemetryCfg(4, false) // Hogwild: telemetry must be race-safe
	cfg.Telemetry = run
	cfg.Observer = func(ev obs.TrainEvent) { events = append(events, ev) }
	m, err := Train(g, cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Counters merged across shards must equal the event-stream sums —
	// both sides are derived from the same per-shard counts, so any
	// lost update in the merge would break the equality.
	var wantWalks, wantPairs, wantSegs int64
	for _, ev := range events {
		switch ev.Stage {
		case obs.StageWalk:
			wantWalks += int64(ev.Examples)
		case obs.StageSkipGram:
			wantPairs += int64(ev.Examples)
		case obs.StageCrossPair:
			wantSegs += int64(ev.Examples)
		}
	}
	snap := run.Reg.Snapshot()
	if got := snap.Counters["walk.paths"]; got != wantWalks || got == 0 {
		t.Fatalf("walk.paths counter %d, events sum %d", got, wantWalks)
	}
	if got := snap.Counters["skipgram.pairs"]; got != wantPairs || got == 0 {
		t.Fatalf("skipgram.pairs counter %d, events sum %d", got, wantPairs)
	}
	if got := snap.Counters["cross.segments"]; got != wantSegs || got == 0 {
		t.Fatalf("cross.segments counter %d, events sum %d", got, wantSegs)
	}
	if h := snap.Histograms["cross.segment_loss"]; h.Count != wantSegs {
		t.Fatalf("segment-loss histogram count %d, want %d", h.Count, wantSegs)
	}

	// Spans cover every stage; per-view stages appear once per view per
	// iteration.
	stages := map[string]int{}
	for _, s := range run.Trace.Stages() {
		stages[s.Name] = s.Count
	}
	views := 0
	for _, v := range m.Views() {
		if v.NumNodes() > 0 {
			views++
		}
	}
	if stages["train"] != 1 || stages["iteration"] != cfg.Iterations {
		t.Fatalf("train/iteration span counts wrong: %v", stages)
	}
	if stages["walk"] != views*cfg.Iterations || stages["skipgram"] != views*cfg.Iterations {
		t.Fatalf("per-view span counts wrong (views=%d iters=%d): %v", views, cfg.Iterations, stages)
	}
	if stages["cross_pair"] != len(m.ViewPairs())*cfg.Iterations {
		t.Fatalf("cross_pair span count wrong (pairs=%d): %v", len(m.ViewPairs()), stages)
	}

	// Per-worker accounting saw every pool worker do real work.
	workers := run.WorkerSummaries()
	if len(workers) == 0 {
		t.Fatal("no worker summaries recorded")
	}
	var busy float64
	for _, w := range workers {
		busy += w.BusySeconds
	}
	if busy <= 0 {
		t.Fatal("zero total busy time")
	}

	// The report carries per-stage wall time, per-view L_single,
	// per-pair L_cross and examples/sec, and validates against the
	// schema.
	rep := m.Report()
	if len(rep.Views) != views || len(rep.Pairs) != len(m.ViewPairs()) {
		t.Fatalf("report views/pairs: %d/%d want %d/%d", len(rep.Views), len(rep.Pairs), views, len(m.ViewPairs()))
	}
	for _, v := range rep.Views {
		if v.LSingle <= 0 || math.IsNaN(v.LSingle) {
			t.Fatalf("view %d final L_single %v not positive", v.View, v.LSingle)
		}
	}
	for _, p := range rep.Pairs {
		if math.IsNaN(p.LCross) {
			t.Fatalf("pair %d final L_cross is NaN", p.Pair)
		}
	}
	if len(rep.Iterations) != cfg.Iterations {
		t.Fatalf("report has %d iterations, want %d", len(rep.Iterations), cfg.Iterations)
	}
	if rep.ExamplesPerSec <= 0 {
		t.Fatal("report examples_per_sec not positive")
	}
	var buf bytes.Buffer
	if err := obs.WriteReport(&buf, rep); err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateReport(buf.Bytes()); err != nil {
		t.Fatalf("training report failed schema validation: %v", err)
	}
}

// Final per-view losses must be returned from Train (via History /
// FinalLosses) so callers can assert convergence — previously they were
// computed and discarded after each step.
func TestFinalLossesReturnedAndConverging(t *testing.T) {
	g := socialGraph(t, 12, 6, 5)
	cfg := quickCfg()
	cfg.Iterations = 5
	m, err := Train(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	viewLoss, pairLoss := m.FinalLosses()
	if len(viewLoss) != len(m.Views()) {
		t.Fatalf("FinalLosses returned %d view losses, want %d", len(viewLoss), len(m.Views()))
	}
	if len(pairLoss) != len(m.ViewPairs()) {
		t.Fatalf("FinalLosses returned %d pair losses, want %d", len(pairLoss), len(m.ViewPairs()))
	}
	for vi, l := range viewLoss {
		if l <= 0 || math.IsNaN(l) || math.IsInf(l, 0) {
			t.Fatalf("view %d final loss %v not finite-positive", vi, l)
		}
	}
	// Convergence: the skip-gram loss at the end must improve on the
	// first iteration (learning rate decays, fresh walks every pass).
	first, last := m.History[0], m.History[len(m.History)-1]
	if last.SingleLoss >= first.SingleLoss {
		t.Fatalf("single-view loss did not decrease: %v -> %v", first.SingleLoss, last.SingleLoss)
	}
	// Components add up to the pair loss.
	for _, st := range m.History {
		if math.Abs(st.Translation+st.Reconstruction-st.CrossLoss) > 1e-9 {
			t.Fatalf("iteration %d: translation %v + reconstruction %v != cross %v",
				st.Iteration, st.Translation, st.Reconstruction, st.CrossLoss)
		}
	}
}

// Identical event streams for the same Seed under DeterministicApply:
// every non-timing field of every event must match across runs, at any
// worker count.
func TestEventStreamDeterministic(t *testing.T) {
	collect := func(workers int) []obs.TrainEvent {
		g := socialGraph(t, 10, 5, 7)
		cfg := telemetryCfg(workers, true)
		var events []obs.TrainEvent
		cfg.Observer = func(ev obs.TrainEvent) { events = append(events, ev.Deterministic()) }
		if _, err := Train(g, cfg); err != nil {
			t.Fatal(err)
		}
		return events
	}
	for _, workers := range []int{1, 4} {
		a, b := collect(workers), collect(workers)
		if len(a) == 0 {
			t.Fatalf("workers=%d: empty event stream", workers)
		}
		if !reflect.DeepEqual(a, b) {
			for i := range a {
				if i < len(b) && a[i] != b[i] {
					t.Fatalf("workers=%d: event %d differs:\n  %+v\n  %+v", workers, i, a[i], b[i])
				}
			}
			t.Fatalf("workers=%d: event streams differ in length: %d vs %d", workers, len(a), len(b))
		}
	}
}

// With NoCrossView there must be no cross_pair events; with ablations
// disabling one cross task, the corresponding component must be zero.
func TestEventStreamAblations(t *testing.T) {
	g := socialGraph(t, 10, 5, 9)
	cfg := quickCfg()
	cfg.NoCrossView = true
	var stages []obs.Stage
	cfg.Observer = func(ev obs.TrainEvent) { stages = append(stages, ev.Stage) }
	if _, err := Train(g, cfg); err != nil {
		t.Fatal(err)
	}
	for _, s := range stages {
		if s == obs.StageCrossPair {
			t.Fatal("cross_pair event emitted under NoCrossView")
		}
	}

	cfg = quickCfg()
	cfg.NoTranslation = true
	sawCross := false
	cfg.Observer = func(ev obs.TrainEvent) {
		if ev.Stage == obs.StageCrossPair {
			sawCross = true
			if ev.LTranslation != 0 {
				t.Fatalf("translation component %v under NoTranslation", ev.LTranslation)
			}
		}
	}
	if _, err := Train(g, cfg); err != nil {
		t.Fatal(err)
	}
	if !sawCross {
		t.Fatal("no cross_pair events under NoTranslation ablation")
	}
}

// Training with telemetry enabled must not change the embeddings: the
// instrumentation only observes. (Deterministic mode so runs compare
// exactly.)
func TestTelemetryDoesNotPerturbTraining(t *testing.T) {
	cfg := telemetryCfg(2, true)
	bare, _ := trainEmb(t, cfg, 31)

	cfg = telemetryCfg(2, true)
	cfg.Telemetry = obs.NewRun()
	cfg.Observer = func(obs.TrainEvent) {}
	instrumented, _ := trainEmb(t, cfg, 31)

	if !reflect.DeepEqual(bare, instrumented) {
		t.Fatal("telemetry changed training results")
	}
}
