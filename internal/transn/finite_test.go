package transn

import (
	"math"
	"strings"
	"sync"
	"testing"

	"transn/internal/obs"
)

// TestCheckFiniteCleanModel: a normal training run is finite end to end
// and the iteration guard stays quiet.
func TestCheckFiniteCleanModel(t *testing.T) {
	g := socialGraph(t, 8, 4, 1)
	cfg := DefaultConfig()
	cfg.Dim = 12
	cfg.WalkLength = 8
	cfg.MinWalksPerNode = 2
	cfg.MaxWalksPerNode = 4
	cfg.Iterations = 2
	cfg.CrossPathsPerPair = 10
	cfg.Workers = 1
	var diags []obs.TrainEvent
	cfg.Observer = func(ev obs.TrainEvent) {
		if ev.Stage == obs.StageDiagnostic {
			diags = append(diags, ev)
		}
	}
	m, err := Train(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.CheckFinite(); err != nil {
		t.Fatalf("clean model failed CheckFinite: %v", err)
	}
	if m.NonFinite() {
		t.Fatal("clean model flagged non-finite")
	}
	if len(diags) != 0 {
		t.Fatalf("clean run emitted %d diagnostic events: %+v", len(diags), diags)
	}
}

// TestGuardDetectsInjectedNaN corrupts one embedding row mid-training
// (from the serialized Observer callback, i.e. at a stage boundary) and
// checks the guard notices at the next iteration boundary: exactly one
// StageDiagnostic warning, NonFinite latched, CheckFinite naming the
// view.
func TestGuardDetectsInjectedNaN(t *testing.T) {
	g := socialGraph(t, 8, 4, 1)
	cfg := DefaultConfig()
	cfg.Dim = 12
	cfg.WalkLength = 8
	cfg.MinWalksPerNode = 2
	cfg.MaxWalksPerNode = 4
	cfg.Iterations = 3
	cfg.CrossPathsPerPair = 10
	cfg.Workers = 1

	var model *Model
	cfg.ModelReady = func(m *Model) { model = m }
	var diags []obs.TrainEvent
	injected := false
	cfg.Observer = func(ev obs.TrainEvent) {
		if ev.Stage == obs.StageDiagnostic {
			diags = append(diags, ev)
			return
		}
		// Poison view 0 after the first iteration closes; the guard for
		// that iteration has not run yet, so detection must land on this
		// or a later iteration's boundary — never crash training.
		if !injected && ev.Stage == obs.StageIteration && ev.Epoch == 0 {
			injected = true
			model.ViewTable(0).Set(0, 0, math.NaN())
		}
	}
	m, err := Train(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !m.NonFinite() {
		t.Fatal("guard did not latch NonFinite after NaN injection")
	}
	if len(diags) != 1 {
		t.Fatalf("want exactly 1 diagnostic event, got %d: %+v", len(diags), diags)
	}
	if diags[0].Level != obs.LevelWarning || !strings.Contains(diags[0].Message, "non-finite") {
		t.Fatalf("unexpected diagnostic event: %+v", diags[0])
	}
	err = m.CheckFinite()
	if err == nil {
		t.Fatal("CheckFinite passed a NaN-corrupted model")
	}
	if !strings.Contains(err.Error(), "view 0") {
		t.Fatalf("CheckFinite error does not name the corrupted view: %v", err)
	}
}

// TestTranslatorCheckFinite covers the translator parameter sweep.
func TestTranslatorCheckFinite(t *testing.T) {
	g := socialGraph(t, 8, 4, 1)
	cfg := DefaultConfig()
	cfg.Dim = 12
	cfg.WalkLength = 8
	cfg.MinWalksPerNode = 2
	cfg.MaxWalksPerNode = 4
	cfg.Iterations = 1
	cfg.CrossPathsPerPair = 5
	cfg.Workers = 1
	m, err := Train(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.ViewPairs()) == 0 {
		t.Fatal("test graph produced no view pairs")
	}
	tr := m.Translators(0)[0]
	if err := tr.CheckFinite(); err != nil {
		t.Fatalf("clean translator failed CheckFinite: %v", err)
	}
	tr.Ws[0].Set(0, 0, math.Inf(1))
	if err := tr.CheckFinite(); err == nil {
		t.Fatal("translator CheckFinite passed an Inf parameter")
	}
	if err := m.CheckFinite(); err == nil {
		t.Fatal("model CheckFinite passed an Inf translator parameter")
	}
}

// TestReportConcurrentWithTraining exercises Model.Report and
// FinalLosses from a second goroutine while Train is appending history
// and the Observer stream is live — the scenario of a diagnostics
// endpoint polling mid-run. Run under -race this pins the
// synchronization contract of ModelReady + Report/FinalLosses.
func TestReportConcurrentWithTraining(t *testing.T) {
	g := socialGraph(t, 10, 5, 2)
	cfg := DefaultConfig()
	cfg.Dim = 12
	cfg.WalkLength = 8
	cfg.MinWalksPerNode = 2
	cfg.MaxWalksPerNode = 4
	cfg.Iterations = 4
	cfg.CrossPathsPerPair = 10
	cfg.Workers = 2
	cfg.Telemetry = obs.NewRun()

	ready := make(chan *Model, 1)
	cfg.ModelReady = func(m *Model) { ready <- m }
	events := 0
	cfg.Observer = func(ev obs.TrainEvent) { events++ }

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		m := <-ready
		polls := 0
		for {
			select {
			case <-done:
				return
			default:
			}
			rep := m.Report()
			if rep.Schema != obs.ReportSchema {
				t.Errorf("live report schema = %q", rep.Schema)
				return
			}
			m.FinalLosses()
			polls++
		}
	}()

	m, err := Train(g, cfg)
	close(done)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if events == 0 {
		t.Fatal("observer saw no events")
	}
	if vl, _ := m.FinalLosses(); len(vl) == 0 {
		t.Fatal("no final losses after training")
	}
}
