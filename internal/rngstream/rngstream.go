// Package rngstream derives independent deterministic random streams
// from a single base seed. Every goroutine in the sharded training
// pipeline owns a private *rand.Rand whose seed is derived from the
// model seed plus a list of integer labels (stream kind, view index,
// shard index, iteration, ...). Centralizing the derivation in one
// helper keeps the stream layout auditable: no two code paths may share
// a rand.Rand across goroutines, and no two distinct label lists may
// collide onto the same stream.
//
// Derivation uses the SplitMix64 finalizer, whose avalanche behaviour
// makes nearby labels (view 0 vs view 1, shard 3 vs shard 4) produce
// statistically unrelated seeds. The math/rand generator seeded from
// the derived value then provides the stream.
package rngstream

import "math/rand"

// mix64 is the SplitMix64 output function (Steele, Lea & Flood 2014):
// a bijective finalizer with full avalanche, so any change in the input
// flips roughly half the output bits.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Derive returns a deterministic sub-seed for the stream identified by
// the label list. Labels are order-sensitive: Derive(s, 1, 2) and
// Derive(s, 2, 1) name different streams. With no labels the seed is
// still mixed once, so Derive(s) never equals s itself.
func Derive(seed int64, labels ...int64) int64 {
	x := mix64(uint64(seed))
	for _, l := range labels {
		x = mix64(x ^ mix64(uint64(l)))
	}
	return int64(x)
}

// New returns a private *rand.Rand for the stream identified by the
// label list. The returned generator must not be shared across
// goroutines; derive one stream per worker instead.
func New(seed int64, labels ...int64) *rand.Rand {
	return rand.New(rand.NewSource(Derive(seed, labels...)))
}
