package rngstream

import "testing"

func TestDeriveDeterministic(t *testing.T) {
	if Derive(7, 1, 2) != Derive(7, 1, 2) {
		t.Fatal("Derive must be deterministic")
	}
	if New(7, 1, 2).Int63() != New(7, 1, 2).Int63() {
		t.Fatal("New must yield identical streams for identical labels")
	}
}

func TestDeriveLabelSensitivity(t *testing.T) {
	base := Derive(1, 0, 0)
	variants := []int64{
		Derive(1, 0, 1),
		Derive(1, 1, 0),
		Derive(2, 0, 0),
		Derive(1, 0),
		Derive(1),
	}
	for i, v := range variants {
		if v == base {
			t.Fatalf("variant %d collides with base stream", i)
		}
	}
	if Derive(1, 1, 2) == Derive(1, 2, 1) {
		t.Fatal("label order must matter")
	}
	if Derive(5) == 5 {
		t.Fatal("Derive with no labels must still mix the seed")
	}
}

// TestStreamIndependence checks that streams derived from the same seed
// with adjacent labels behave like unrelated generators: over a long
// prefix they almost never agree position-wise, for every pair. This is
// the property the sharded trainer relies on (seed ⊕ view ⊕ shard).
func TestStreamIndependence(t *testing.T) {
	const n = 4096
	const streams = 6
	seqs := make([][]uint32, streams)
	for s := 0; s < streams; s++ {
		rng := New(1, int64(s/3), int64(s%3)) // labels (view, shard)
		seq := make([]uint32, n)
		for i := range seq {
			seq[i] = rng.Uint32()
		}
		seqs[s] = seq
	}
	for a := 0; a < streams; a++ {
		for b := a + 1; b < streams; b++ {
			matches := 0
			for i := 0; i < n; i++ {
				if seqs[a][i] == seqs[b][i] {
					matches++
				}
			}
			// Position-wise 32-bit collisions should be essentially absent;
			// allow a microscopic tolerance.
			if matches > 2 {
				t.Fatalf("streams %d and %d agree at %d/%d positions", a, b, matches, n)
			}
		}
	}
}

// TestStreamBitBalance guards against a degenerate derivation (e.g. a
// label mixing bug zeroing high bits): each derived stream's first draws
// should have roughly balanced bits.
func TestStreamBitBalance(t *testing.T) {
	for label := int64(0); label < 8; label++ {
		rng := New(42, label)
		ones := 0
		const draws = 512
		for i := 0; i < draws; i++ {
			v := rng.Uint64()
			for ; v != 0; v &= v - 1 {
				ones++
			}
		}
		frac := float64(ones) / float64(draws*64)
		if frac < 0.45 || frac > 0.55 {
			t.Fatalf("stream %d one-bit fraction %.3f not balanced", label, frac)
		}
	}
}
