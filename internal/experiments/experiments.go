// Package experiments wires datasets, methods and evaluation protocols
// into the paper's tables and figures (Section IV): Table II (dataset
// statistics), Table III (node classification), Table IV (link
// prediction), Table V (ablation) and Figure 6 (t-SNE case study). Both
// cmd/benchrun and the repository's benchmark suite drive this package.
package experiments

import (
	"fmt"
	"io"
	"sort"

	"transn/internal/baselines"
	"transn/internal/baselines/hin2vec"
	"transn/internal/baselines/line"
	"transn/internal/baselines/metapath2vec"
	"transn/internal/baselines/mve"
	"transn/internal/baselines/node2vec"
	"transn/internal/baselines/rgcn"
	"transn/internal/baselines/simple"
	"transn/internal/dataset"
	"transn/internal/graph"
	"transn/internal/mat"
	"transn/internal/obs"
	"transn/internal/transn"
)

// Options configures an experiment run.
type Options struct {
	Size    dataset.Size // Quick (tests/benches) or Full (closer to paper)
	Dim     int          // embedding dimensionality (paper: 128)
	Seed    int64
	Reps    int // classification repetitions (paper: 10)
	Workers int // TransN worker-pool size (0 = all cores, 1 = serial)
	// Observer, when non-nil, is installed as the Config.Observer of
	// every TransN training this run performs (benchrun threads its
	// convergence monitor through here). Baselines ignore it.
	Observer func(obs.TrainEvent)
}

// DefaultOptions returns fast settings for iterative use.
func DefaultOptions() Options {
	return Options{Size: dataset.Quick, Dim: 32, Seed: 1, Reps: 3}
}

// FullOptions returns heavier settings closer to the paper's setup.
func FullOptions() Options {
	return Options{Size: dataset.Full, Dim: 64, Seed: 1, Reps: 10}
}

// TransNMethod adapts transn.Train to the baselines.Method interface.
type TransNMethod struct {
	Label string // display name; defaults to "TransN"
	Cfg   transn.Config
}

// Name implements baselines.Method.
func (m TransNMethod) Name() string {
	if m.Label == "" {
		return "TransN"
	}
	return m.Label
}

// Embed implements baselines.Method.
func (m TransNMethod) Embed(g *graph.Graph, dim int, seed int64) (*mat.Dense, error) {
	cfg := m.Cfg
	cfg.Dim = dim
	cfg.Seed = seed
	model, err := transn.Train(g, cfg)
	if err != nil {
		return nil, err
	}
	return model.Embeddings(), nil
}

// transnConfig returns TransN hyperparameters scaled to the run size.
func transnConfig(o Options) transn.Config {
	cfg := transn.DefaultConfig()
	// Tables must be reproducible run to run: shard across the pool but
	// apply updates in deterministic shard order.
	cfg.Workers = o.Workers
	cfg.DeterministicApply = true
	cfg.Observer = o.Observer
	if o.Size == dataset.Quick {
		cfg.WalkLength = 20
		cfg.MinWalksPerNode = 4
		cfg.MaxWalksPerNode = 10
		cfg.Iterations = 6
		cfg.CrossPathLen = 6
		cfg.CrossPathsPerPair = 100
		cfg.LRCross = 0.05
	}
	return cfg
}

// metaPattern returns the per-dataset meta-path, mirroring Section
// IV-A3's choices (APVPA on AMiner, UKU on BLOG, UAKAU-style on App-*;
// our App pattern bridges applets through users and keywords).
func metaPattern(datasetName string) []string {
	switch datasetName {
	case "AMiner":
		return []string{"author", "paper", "venue", "paper", "author"}
	case "BLOG":
		return []string{"user", "keyword", "user"}
	case "App-Daily", "App-Weekly":
		// Walks must start at applets (the labeled type) so every labeled
		// node is embedded. The two-hop AUA path is used because the
		// longer AUAKA variant dies early on applets with no keyword
		// edge (the AK view covers only part of the catalogue).
		return []string{"applet", "user", "applet"}
	default:
		return nil
	}
}

// Methods returns the Table III/IV method roster for a dataset: the
// seven baselines plus TransN, in the paper's row order.
func Methods(datasetName string, o Options) []baselines.Method {
	quick := o.Size == dataset.Quick
	scale := func(full, q int) int {
		if quick {
			return q
		}
		return full
	}
	pattern := metaPattern(datasetName)
	methods := []baselines.Method{
		line.Method{SamplesPerEdge: scale(500, 200)},
		node2vec.Method{P: 0.5, Q: 2, NumWalks: scale(10, 4), WalkLength: scale(40, 20)},
	}
	if pattern != nil {
		methods = append(methods, metapath2vec.Method{
			Pattern:  pattern,
			NumWalks: scale(10, 4), WalkLength: scale(40, 20),
		})
	}
	methods = append(methods,
		hin2vec.Method{NumWalks: scale(24, 16), WalkLength: 40},
		mve.Method{NumWalks: scale(6, 3), WalkLength: scale(40, 20), Iterations: scale(4, 2)},
		rgcn.Method{Epochs: scale(80, 40), Batch: scale(256, 128)},
		simple.Method{Epochs: scale(300, 250)},
		TransNMethod{Cfg: transnConfig(o)},
	)
	return methods
}

// AblationMethods returns the Table V roster: the five degenerated
// variants plus the full model.
func AblationMethods(o Options) []baselines.Method {
	base := transnConfig(o)
	mk := func(label string, mutate func(*transn.Config)) TransNMethod {
		cfg := base
		mutate(&cfg)
		return TransNMethod{Label: label, Cfg: cfg}
	}
	return []baselines.Method{
		mk("TransN-Without-Cross-View", func(c *transn.Config) { c.NoCrossView = true }),
		mk("TransN-With-Simple-Walk", func(c *transn.Config) { c.SimpleWalk = true }),
		mk("TransN-With-Simple-Translator", func(c *transn.Config) { c.SimpleTranslator = true }),
		mk("TransN-Without-Translation-Tasks", func(c *transn.Config) { c.NoTranslation = true }),
		mk("TransN-Without-Reconstruction-Tasks", func(c *transn.Config) { c.NoReconstruction = true }),
		TransNMethod{Cfg: base},
	}
}

// Row is one result line of a table.
type Row struct {
	Dataset string
	Method  string
	Metrics map[string]float64
}

// PrintRows renders rows grouped by dataset with aligned columns.
func PrintRows(w io.Writer, rows []Row, metricOrder []string) {
	fmt.Fprintf(w, "%-38s %-12s", "Method", "Dataset")
	for _, m := range metricOrder {
		fmt.Fprintf(w, " %10s", m)
	}
	fmt.Fprintln(w)
	for _, r := range rows {
		fmt.Fprintf(w, "%-38s %-12s", r.Method, r.Dataset)
		for _, m := range metricOrder {
			fmt.Fprintf(w, " %10.4f", r.Metrics[m])
		}
		fmt.Fprintln(w)
	}
}

// SortRowsByDataset orders rows dataset-major preserving method order
// within each dataset (stable).
func SortRowsByDataset(rows []Row, datasetOrder []string) {
	rank := map[string]int{}
	for i, d := range datasetOrder {
		rank[d] = i
	}
	sort.SliceStable(rows, func(i, j int) bool {
		return rank[rows[i].Dataset] < rank[rows[j].Dataset]
	})
}
