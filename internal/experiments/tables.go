package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"strings"

	"transn/internal/baselines"
	"transn/internal/dataset"
	"transn/internal/eval"
	"transn/internal/graph"
	"transn/internal/mat"
	"transn/internal/tsne"
)

// Table2 prints the dataset-statistics table (paper Table II analogue)
// and returns the stats per dataset.
func Table2(w io.Writer, opts Options) map[string]graph.Stats {
	out := map[string]graph.Stats{}
	fmt.Fprintln(w, "Table II: Statistics of Synthetic Heterogeneous Network Datasets")
	fmt.Fprintf(w, "%-12s %8s %8s %8s %-34s %-40s\n",
		"Dataset", "#Nodes", "#Edges", "#Labeled", "NodeTypes", "EdgeTypes")
	for _, spec := range dataset.All() {
		g := spec.Generate(opts.Size, opts.Seed)
		s := g.ComputeStats()
		out[spec.Name] = s
		fmt.Fprintf(w, "%-12s %8d %8d %8d %-34s %-40s\n",
			spec.Name, s.NumNodes, s.NumEdges, s.LabeledNodes,
			strings.Join(graph.SortedTypeCounts(s.NodesPerType), ","),
			strings.Join(graph.SortedTypeCounts(s.EdgesPerType), ","))
	}
	return out
}

// Table3 runs the node-classification comparison (paper Table III):
// every method on every dataset, macro/micro-F1 averaged over
// opts.Reps 90/10 splits.
func Table3(w io.Writer, opts Options) ([]Row, error) {
	var rows []Row
	for _, spec := range dataset.All() {
		g := spec.Generate(opts.Size, opts.Seed)
		for _, m := range Methods(spec.Name, opts) {
			row, err := classifyRow(g, spec.Name, m, opts)
			if err != nil {
				return nil, fmt.Errorf("table3 %s/%s: %w", spec.Name, m.Name(), err)
			}
			rows = append(rows, row)
		}
	}
	fmt.Fprintln(w, "Table III: Results of the Node Classification Task")
	PrintRows(w, rows, []string{"Macro-F1", "Micro-F1"})
	return rows, nil
}

func classifyRow(g *graph.Graph, datasetName string, m baselines.Method, opts Options) (Row, error) {
	emb, err := m.Embed(g, opts.Dim, opts.Seed)
	if err != nil {
		return Row{}, err
	}
	rng := rand.New(rand.NewSource(opts.Seed + 1))
	macro, micro, err := eval.NodeClassification(emb, g, 0.9, opts.Reps, rng)
	if err != nil {
		return Row{}, err
	}
	return Row{
		Dataset: datasetName,
		Method:  m.Name(),
		Metrics: map[string]float64{"Macro-F1": macro, "Micro-F1": micro},
	}, nil
}

// Table4 runs the link-prediction comparison (paper Table IV): 40% of
// edges removed, methods trained on the remainder, pairs scored by
// embedding inner product, AUC reported.
func Table4(w io.Writer, opts Options) ([]Row, error) {
	var rows []Row
	for _, spec := range dataset.All() {
		g := spec.Generate(opts.Size, opts.Seed)
		rng := rand.New(rand.NewSource(opts.Seed + 2))
		sub, pos, neg, err := eval.LinkPredictionSplit(g, 0.4, rng)
		if err != nil {
			return nil, fmt.Errorf("table4 %s: %w", spec.Name, err)
		}
		for _, m := range Methods(spec.Name, opts) {
			emb, err := m.Embed(sub, opts.Dim, opts.Seed)
			if err != nil {
				return nil, fmt.Errorf("table4 %s/%s: %w", spec.Name, m.Name(), err)
			}
			rows = append(rows, Row{
				Dataset: spec.Name,
				Method:  m.Name(),
				Metrics: map[string]float64{"AUC": eval.LinkPredictionAUC(emb, pos, neg)},
			})
		}
	}
	fmt.Fprintln(w, "Table IV: AUC Scores of the Link Prediction Task")
	PrintRows(w, rows, []string{"AUC"})
	return rows, nil
}

// Table5 runs the ablation study (paper Table V): the five degenerated
// TransN variants plus the full model on the node-classification task.
func Table5(w io.Writer, opts Options) ([]Row, error) {
	var rows []Row
	for _, spec := range dataset.All() {
		g := spec.Generate(opts.Size, opts.Seed)
		for _, m := range AblationMethods(opts) {
			row, err := classifyRow(g, spec.Name, m, opts)
			if err != nil {
				return nil, fmt.Errorf("table5 %s/%s: %w", spec.Name, m.Name(), err)
			}
			rows = append(rows, row)
		}
	}
	fmt.Fprintln(w, "Table V: Results of the Ablation Study on TransN")
	PrintRows(w, rows, []string{"Macro-F1", "Micro-F1"})
	return rows, nil
}

// Figure6Result holds one method's case-study projection.
type Figure6Result struct {
	Method     string
	Points     *mat.Dense // 2D coordinates, one row per selected applet
	Labels     []int      // category of each point
	Silhouette float64    // cluster separation of the projection
}

// Figure6 reproduces the case study (paper Figure 6): select up to 10
// labeled applets per category from App-Daily, embed with HIN2VEC,
// SimplE and TransN, project to 2D with t-SNE, and report the silhouette
// score of each projection (higher = better-separated categories, the
// figure's qualitative claim made quantitative).
func Figure6(w io.Writer, opts Options) ([]Figure6Result, error) {
	g := dataset.AppDaily(opts.Size, opts.Seed)
	rng := rand.New(rand.NewSource(opts.Seed + 3))

	// Pick up to 10 labeled applets per category, at random.
	perCat := map[int][]graph.NodeID{}
	for _, id := range g.LabeledNodes() {
		perCat[g.Label(id)] = append(perCat[g.Label(id)], id)
	}
	var selected []graph.NodeID
	var labels []int
	for c := 0; c < g.NumLabels(); c++ {
		ids := perCat[c]
		rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
		k := 10
		if k > len(ids) {
			k = len(ids)
		}
		for _, id := range ids[:k] {
			selected = append(selected, id)
			labels = append(labels, c)
		}
	}
	if len(selected) == 0 {
		return nil, fmt.Errorf("figure6: no labeled applets")
	}

	methods := []baselines.Method{
		pickMethod(Methods("App-Daily", opts), "HIN2VEC"),
		pickMethod(Methods("App-Daily", opts), "SimplE"),
		pickMethod(Methods("App-Daily", opts), "TransN"),
	}
	var results []Figure6Result
	fmt.Fprintln(w, "Figure 6: t-SNE projections of applet embeddings (App-Daily)")
	for _, m := range methods {
		emb, err := m.Embed(g, opts.Dim, opts.Seed)
		if err != nil {
			return nil, fmt.Errorf("figure6 %s: %w", m.Name(), err)
		}
		X := mat.New(len(selected), emb.C)
		for i, id := range selected {
			X.SetRow(i, emb.Row(int(id)))
		}
		Y := tsne.Embed(X, tsne.Config{Iterations: 400, Perplexity: 12, Seed: opts.Seed})
		sil := eval.Silhouette(Y, labels)
		results = append(results, Figure6Result{
			Method: m.Name(), Points: Y, Labels: labels, Silhouette: sil,
		})
		fmt.Fprintf(w, "  %-10s %3d applets in %d categories, silhouette %.4f\n",
			m.Name(), len(selected), g.NumLabels(), sil)
	}
	return results, nil
}

// WriteFigure6Points dumps projection coordinates in a plottable TSV:
// method, x, y, category.
func WriteFigure6Points(w io.Writer, results []Figure6Result) {
	fmt.Fprintln(w, "method\tx\ty\tcategory")
	for _, r := range results {
		for i := 0; i < r.Points.R; i++ {
			fmt.Fprintf(w, "%s\t%.5f\t%.5f\t%d\n",
				r.Method, r.Points.At(i, 0), r.Points.At(i, 1), r.Labels[i])
		}
	}
}

func pickMethod(ms []baselines.Method, name string) baselines.Method {
	for _, m := range ms {
		if m.Name() == name {
			return m
		}
	}
	panic(fmt.Sprintf("experiments: method %q not in roster", name))
}

// TableClustering runs the node-clustering extension task (not in the
// paper; a standard companion evaluation in the HIN-embedding
// literature): k-means over labeled-node embeddings with k = number of
// classes, scored by NMI against the true labels.
func TableClustering(w io.Writer, opts Options) ([]Row, error) {
	var rows []Row
	for _, spec := range dataset.All() {
		g := spec.Generate(opts.Size, opts.Seed)
		labeled := g.LabeledNodes()
		labels := make([]int, len(labeled))
		for i, id := range labeled {
			labels[i] = g.Label(id)
		}
		for _, m := range Methods(spec.Name, opts) {
			emb, err := m.Embed(g, opts.Dim, opts.Seed)
			if err != nil {
				return nil, fmt.Errorf("clustering %s/%s: %w", spec.Name, m.Name(), err)
			}
			X := mat.New(len(labeled), emb.C)
			for i, id := range labeled {
				X.SetRow(i, emb.Row(int(id)))
			}
			rng := rand.New(rand.NewSource(opts.Seed + 4))
			nmi := eval.NodeClustering(X, labels, g.NumLabels(), rng)
			rows = append(rows, Row{
				Dataset: spec.Name,
				Method:  m.Name(),
				Metrics: map[string]float64{"NMI": nmi},
			})
		}
	}
	fmt.Fprintln(w, "Extension: Node Clustering (k-means on embeddings, NMI)")
	PrintRows(w, rows, []string{"NMI"})
	return rows, nil
}
