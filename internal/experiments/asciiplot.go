package experiments

import (
	"fmt"
	"io"
	"math"

	"transn/internal/mat"
)

// RenderScatter draws 2D points as an ASCII scatter plot, labeling each
// point with its category digit (categories ≥ 10 wrap to letters). It is
// used by cmd/benchrun to make Figure 6 inspectable in a terminal.
func RenderScatter(w io.Writer, title string, points *mat.Dense, labels []int, width, height int) {
	if points.R == 0 || points.C < 2 {
		return
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for i := 0; i < points.R; i++ {
		x, y := points.At(i, 0), points.At(i, 1)
		minX, maxX = math.Min(minX, x), math.Max(maxX, x)
		minY, maxY = math.Min(minY, y), math.Max(maxY, y)
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = make([]byte, width)
		for c := range grid[r] {
			grid[r][c] = ' '
		}
	}
	glyph := func(label int) byte {
		if label < 10 {
			return byte('0' + label)
		}
		return byte('a' + (label-10)%26)
	}
	for i := 0; i < points.R; i++ {
		cx := int(float64(width-1) * (points.At(i, 0) - minX) / (maxX - minX))
		cy := int(float64(height-1) * (points.At(i, 1) - minY) / (maxY - minY))
		// Flip y so larger values render higher.
		grid[height-1-cy][cx] = glyph(labels[i])
	}
	fmt.Fprintf(w, "  %s\n", title)
	fmt.Fprintf(w, "  +%s+\n", dashes(width))
	for _, row := range grid {
		fmt.Fprintf(w, "  |%s|\n", string(row))
	}
	fmt.Fprintf(w, "  +%s+\n", dashes(width))
}

func dashes(n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = '-'
	}
	return string(b)
}
