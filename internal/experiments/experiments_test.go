package experiments

import (
	"bytes"
	"strings"
	"testing"

	"transn/internal/dataset"
	"transn/internal/mat"
)

func tinyOpts() Options {
	return Options{Size: dataset.Quick, Dim: 16, Seed: 1, Reps: 2}
}

func TestTable2PrintsAllDatasets(t *testing.T) {
	var buf bytes.Buffer
	stats := Table2(&buf, tinyOpts())
	if len(stats) != 4 {
		t.Fatalf("stats for %d datasets", len(stats))
	}
	out := buf.String()
	for _, name := range []string{"AMiner", "BLOG", "App-Daily", "App-Weekly"} {
		if !strings.Contains(out, name) {
			t.Fatalf("missing %s in output:\n%s", name, out)
		}
	}
}

func TestMethodsRosterOrder(t *testing.T) {
	ms := Methods("AMiner", Options{Size: dataset.Quick})
	want := []string{"LINE", "Node2Vec", "Metapath2Vec", "HIN2VEC", "MVE", "R-GCN", "SimplE", "TransN"}
	if len(ms) != len(want) {
		t.Fatalf("roster size %d want %d", len(ms), len(want))
	}
	for i, m := range ms {
		if m.Name() != want[i] {
			t.Fatalf("roster[%d] = %s want %s", i, m.Name(), want[i])
		}
	}
}

func TestAblationRosterOrder(t *testing.T) {
	ms := AblationMethods(Options{Size: dataset.Quick})
	want := []string{
		"TransN-Without-Cross-View",
		"TransN-With-Simple-Walk",
		"TransN-With-Simple-Translator",
		"TransN-Without-Translation-Tasks",
		"TransN-Without-Reconstruction-Tasks",
		"TransN",
	}
	if len(ms) != len(want) {
		t.Fatalf("roster size %d", len(ms))
	}
	for i, m := range ms {
		if m.Name() != want[i] {
			t.Fatalf("roster[%d] = %s want %s", i, m.Name(), want[i])
		}
	}
}

func TestMetaPatternsResolve(t *testing.T) {
	for _, spec := range dataset.All() {
		g := spec.Generate(dataset.Quick, 1)
		p := metaPattern(spec.Name)
		if p == nil {
			t.Fatalf("%s: no meta pattern", spec.Name)
		}
		for _, name := range p {
			found := false
			for _, tn := range g.NodeTypeNames {
				if tn == name {
					found = true
				}
			}
			if !found {
				t.Fatalf("%s: pattern type %q not in graph (%v)", spec.Name, name, g.NodeTypeNames)
			}
		}
	}
}

// TestClassifyRowSingleMethod smoke-tests the Table III pipeline on one
// dataset × one cheap method; the full table is exercised by the
// benchmark suite.
func TestClassifyRowSingleMethod(t *testing.T) {
	g := dataset.AMiner(dataset.Quick, 1)
	m := Methods("AMiner", Options{Size: dataset.Quick})[0] // LINE
	row, err := classifyRow(g, "AMiner", m, tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if row.Metrics["Micro-F1"] <= 0 || row.Metrics["Micro-F1"] > 1 {
		t.Fatalf("Micro-F1 out of range: %v", row.Metrics)
	}
	if row.Method != "LINE" || row.Dataset != "AMiner" {
		t.Fatalf("row identity %+v", row)
	}
}

func TestTransNMethodAdapter(t *testing.T) {
	g := dataset.AMiner(dataset.Quick, 1)
	m := TransNMethod{Cfg: transnConfig(Options{Size: dataset.Quick})}
	emb, err := m.Embed(g, 16, 3)
	if err != nil {
		t.Fatal(err)
	}
	if emb.R != g.NumNodes() || emb.C != 16 {
		t.Fatalf("shape %dx%d", emb.R, emb.C)
	}
	if m.Name() != "TransN" {
		t.Fatalf("name %q", m.Name())
	}
	named := TransNMethod{Label: "X"}
	if named.Name() != "X" {
		t.Fatal("label override broken")
	}
}

func TestPrintRowsFormatting(t *testing.T) {
	rows := []Row{
		{Dataset: "D1", Method: "M1", Metrics: map[string]float64{"A": 0.5}},
		{Dataset: "D2", Method: "M2", Metrics: map[string]float64{"A": 0.25}},
	}
	var buf bytes.Buffer
	PrintRows(&buf, rows, []string{"A"})
	out := buf.String()
	if !strings.Contains(out, "0.5000") || !strings.Contains(out, "0.2500") {
		t.Fatalf("bad formatting:\n%s", out)
	}
}

func TestSortRowsByDataset(t *testing.T) {
	rows := []Row{
		{Dataset: "B", Method: "m1"},
		{Dataset: "A", Method: "m1"},
		{Dataset: "B", Method: "m2"},
		{Dataset: "A", Method: "m2"},
	}
	SortRowsByDataset(rows, []string{"A", "B"})
	if rows[0].Dataset != "A" || rows[1].Dataset != "A" || rows[2].Dataset != "B" {
		t.Fatalf("sorted order %+v", rows)
	}
	// Stability: m1 before m2 within each dataset.
	if rows[0].Method != "m1" || rows[2].Method != "m1" {
		t.Fatalf("stability broken %+v", rows)
	}
}

func TestFigure6Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("figure 6 pipeline is slow for -short")
	}
	var buf bytes.Buffer
	opts := tinyOpts()
	results, err := Figure6(&buf, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("results for %d methods", len(results))
	}
	for _, r := range results {
		if r.Points.R == 0 || r.Points.C != 2 {
			t.Fatalf("%s: bad projection %dx%d", r.Method, r.Points.R, r.Points.C)
		}
		if len(r.Labels) != r.Points.R {
			t.Fatalf("%s: labels/points mismatch", r.Method)
		}
	}
	var tsv bytes.Buffer
	WriteFigure6Points(&tsv, results)
	lines := strings.Split(strings.TrimSpace(tsv.String()), "\n")
	wantLines := 1 + results[0].Points.R*3
	if len(lines) != wantLines {
		t.Fatalf("TSV has %d lines want %d", len(lines), wantLines)
	}
}

func TestRenderScatter(t *testing.T) {
	pts := mat.FromSlice(4, 2, []float64{0, 0, 1, 1, -1, 1, 0.5, -0.5})
	labels := []int{0, 1, 2, 11}
	var buf bytes.Buffer
	RenderScatter(&buf, "demo", pts, labels, 20, 8)
	out := buf.String()
	for _, glyph := range []string{"0", "1", "2", "b"} {
		if !strings.Contains(out, glyph) {
			t.Fatalf("glyph %q missing from plot:\n%s", glyph, out)
		}
	}
	// Degenerate inputs must not panic.
	RenderScatter(&buf, "empty", mat.New(0, 2), nil, 10, 4)
	RenderScatter(&buf, "single", mat.FromSlice(1, 2, []float64{3, 3}), []int{0}, 10, 4)
}
