package repro

import (
	"bytes"
	"math/rand"
	"testing"

	"transn/internal/dataset"
	"transn/internal/eval"
	"transn/internal/graph"
	"transn/internal/obs"
	"transn/internal/transn"
)

// TestEndToEndPipeline exercises the complete stack the way a user
// would: generate a dataset, serialize it, re-load it, train TransN,
// persist the model, reload it, and evaluate on both tasks.
func TestEndToEndPipeline(t *testing.T) {
	g := dataset.AMiner(dataset.Quick, 5)

	// TSV round trip.
	var buf bytes.Buffer
	if err := graph.Store(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := graph.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
		t.Fatal("TSV round trip changed the graph")
	}

	// Train on the reloaded graph.
	cfg := transn.DefaultConfig()
	cfg.Dim = 24
	cfg.WalkLength = 15
	cfg.MinWalksPerNode = 3
	cfg.MaxWalksPerNode = 6
	cfg.Iterations = 4
	cfg.CrossPathLen = 4
	cfg.CrossPathsPerPair = 40
	// Exercise the worker pool (walk + skip-gram sharding) while keeping
	// the run reproducible on any machine, with telemetry enabled the
	// way `transn train -report -events` wires it.
	cfg.DeterministicApply = true
	cfg.Telemetry = obs.NewRun()
	events := 0
	cfg.Observer = func(obs.TrainEvent) { events++ }
	model, err := transn.Train(g2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if events == 0 {
		t.Fatal("no training events observed")
	}
	var rbuf bytes.Buffer
	if err := obs.WriteReport(&rbuf, model.Report()); err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateReport(rbuf.Bytes()); err != nil {
		t.Fatalf("end-to-end training report invalid: %v", err)
	}

	// Persist + reload.
	var mbuf bytes.Buffer
	if err := model.Save(&mbuf); err != nil {
		t.Fatal(err)
	}
	reloaded, err := transn.Load(&mbuf, g2)
	if err != nil {
		t.Fatal(err)
	}
	emb := reloaded.Embeddings()

	// Classification beats chance (7 topics → chance ≈ 0.14).
	rng := rand.New(rand.NewSource(9))
	macro, micro, err := eval.NodeClassification(emb, g2, 0.9, 5, rng)
	if err != nil {
		t.Fatal(err)
	}
	if micro < 0.3 {
		t.Fatalf("end-to-end micro-F1 %.3f barely above chance", micro)
	}
	if macro <= 0 || macro > 1 {
		t.Fatalf("macro-F1 out of range: %v", macro)
	}

	// Link prediction beats chance on a fresh split.
	sub, pos, neg, err := eval.LinkPredictionSplit(g2, 0.3, rng)
	if err != nil {
		t.Fatal(err)
	}
	model2, err := transn.Train(sub, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if auc := eval.LinkPredictionAUC(model2.Embeddings(), pos, neg); auc < 0.4 {
		t.Fatalf("end-to-end AUC %.3f below chance band", auc)
	}
}
