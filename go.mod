module transn

go 1.22
